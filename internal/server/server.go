// Package server is the serving subsystem: it exposes a warm
// diversification Pipeline over an HTTP/JSON API, the concrete
// realization of the paper's §6 outlook ("a search architecture
// performing the diversification task in parallel with the document
// scoring phase") scaled from one query to a query stream.
//
// A Server owns a repro.ServeHandle (pipeline + sharded LRU artifact
// cache) and a bounded worker pool: at most Config.Workers requests
// diversify concurrently, the rest queue up to Config.QueueTimeout and
// are then shed with 503 — under overload the server degrades by
// rejecting, never by collapsing. Endpoints:
//
//	GET  /search?q=…&k=…&alg=…  diversified SERP as JSON
//	GET  /healthz               liveness + collection summary
//	GET  /stats                 worker pool, cache and lifecycle counters
//	GET  /queries               known query strings, popularity-ordered
//	                            (the replay corpus for cmd/loadgen)
//	POST /ingest                add/replace one document in the live index
//	POST /delete                remove one document from the live index
//	POST /flush                 seal the write buffer into a segment
//	POST /compact               fold segments+tombstones into a fresh base
//
// Mutations bypass the search worker pool — the engine serializes them
// internally and searches never block on them (they run against the
// previous atomically-published snapshot until the epoch swap).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/suggest"
	"repro/internal/synth"
	"repro/internal/text"
)

// Config tunes the serving layer. The zero value is usable: every field
// has a sensible default applied by New.
type Config struct {
	// Workers bounds the number of concurrent diversifications. Default 8.
	Workers int
	// QueueTimeout is how long a request waits for a worker slot before
	// being shed with 503. Default 5s.
	QueueTimeout time.Duration
	// DefaultAlg answers requests that do not pass ?alg=. Default
	// optselect (the paper's contribution).
	DefaultAlg core.Algorithm
	// MaxK caps the per-request result size. Default 100.
	MaxK int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.DefaultAlg == "" {
		c.DefaultAlg = core.AlgOptSelect
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	return c
}

// Server serves diversified SERPs from a warm pipeline. Create with New;
// all exported methods are safe for concurrent use.
type Server struct {
	handle *repro.ServeHandle
	cfg    Config
	start  time.Time
	mux    *http.ServeMux
	sem    chan struct{} // worker pool: one token per concurrent search

	requests  atomic.Int64 // /search requests admitted past parsing
	errors    atomic.Int64 // 4xx/5xx responses on /search
	rejected  atomic.Int64 // 503s from a saturated worker pool
	inFlight  atomic.Int64 // searches currently holding a worker slot
	searches  atomic.Int64 // completed searches
	ambiguous atomic.Int64 // completed searches that diversified
	cacheHits atomic.Int64 // completed searches served from cached artifacts
	serveNano atomic.Int64 // cumulative in-worker latency
	ingests   atomic.Int64 // documents accepted by POST /ingest
	deletes   atomic.Int64 // documents removed by POST /delete

	// latency histograms per endpoint, measured around the whole handler
	// (for /search that includes worker-pool queueing, unlike serveNano
	// which is in-worker only).
	latency map[string]*latencyHistogram
}

// New wraps the handle in a Server with the given configuration.
func New(h *repro.ServeHandle, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		handle:  h,
		cfg:     cfg,
		start:   time.Now(),
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.Workers),
		latency: make(map[string]*latencyHistogram),
	}
	s.mux.HandleFunc("GET /search", s.instrument("/search", s.handleSearch))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	s.mux.HandleFunc("GET /queries", s.instrument("/queries", s.handleQueries))
	s.mux.HandleFunc("POST /ingest", s.instrument("/ingest", s.handleIngest))
	s.mux.HandleFunc("POST /delete", s.instrument("/delete", s.handleDelete))
	s.mux.HandleFunc("POST /flush", s.instrument("/flush", s.handleFlush))
	s.mux.HandleFunc("POST /compact", s.instrument("/compact", s.handleCompact))
	return s
}

// instrument wraps a handler with the endpoint's latency histogram. The
// histogram map is completed at construction time and read-only after,
// so recording needs no lock.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := &latencyHistogram{}
	s.latency[endpoint] = hist
	return func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		h(w, r)
		hist.observe(time.Since(began))
	}
}

// Handler returns the HTTP handler tree, for mounting in an http.Server
// or an httptest.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// SearchResult is one SERP entry of a search response.
type SearchResult struct {
	ID    string  `json:"id"`
	Rank  int     `json:"rank"` // 1-based rank in the original R_q
	Score float64 `json:"score"`
	Rel   float64 `json:"rel"` // P(d|q)
}

// SpecializationInfo is one mined specialization in a search response.
type SpecializationInfo struct {
	Query string  `json:"query"`
	Prob  float64 `json:"prob"` // P(q'|q), Definition 1
}

// SearchResponse is the JSON body of GET /search.
type SearchResponse struct {
	Query           string               `json:"query"`
	NormalizedQuery string               `json:"normalized_query"`
	Algorithm       string               `json:"algorithm"`
	K               int                  `json:"k"`
	Ambiguous       bool                 `json:"ambiguous"`
	CacheHit        bool                 `json:"cache_hit"`
	TookMicros      int64                `json:"took_us"`
	Specializations []SpecializationInfo `json:"specializations,omitempty"`
	Results         []SearchResult       `json:"results"`
}

// HealthResponse is the JSON body of GET /healthz.
type HealthResponse struct {
	Status        string `json:"status"`
	UptimeSeconds int64  `json:"uptime_s"`
	Docs          int    `json:"docs"`
	LogRecords    int    `json:"log_records"`
	Topics        int    `json:"topics"`
}

// CacheStats is the cache section of a stats response.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	HitRate   float64 `json:"hit_rate"`
}

// IndexStats is the index-segment section of a stats response: the shard
// fan-out every retrieval pays, with the per-shard document counts of the
// partition, whether MaxScore dynamic pruning is live and which scoring
// functions have precomputed max-score tables, plus the posting-storage
// footprint (block size 0 = flat layout) and the process-wide block I/O
// counters — blocks decoded versus blocks skipped by header, the
// observable win of Block-Max skipping.
type IndexStats struct {
	Shards          int      `json:"shards"`
	DocsPerShard    []int    `json:"docs_per_shard"`
	Pruning         bool     `json:"pruning"`
	MaxScoreModels  []string `json:"max_score_models,omitempty"`
	BlockSize       int      `json:"block_size"`
	Postings        int64    `json:"postings"`
	PostingBytes    int64    `json:"posting_bytes"`
	BytesPerPosting float64  `json:"bytes_per_posting"`
	BlocksDecoded   int64    `json:"blocks_decoded"`
	BlocksSkipped   int64    `json:"blocks_skipped"`
}

// StatsResponse is the JSON body of GET /stats.
type StatsResponse struct {
	UptimeSeconds  int64                   `json:"uptime_s"`
	Workers        int                     `json:"workers"`
	Requests       int64                   `json:"requests"`
	Errors         int64                   `json:"errors"`
	Rejected       int64                   `json:"rejected"`
	InFlight       int64                   `json:"in_flight"`
	Searches       int64                   `json:"searches"`
	Ambiguous      int64                   `json:"ambiguous"`
	CacheHits      int64                   `json:"cache_hits"`
	Ingests        int64                   `json:"ingests"`
	Deletes        int64                   `json:"deletes"`
	AvgLatencyMsec float64                 `json:"avg_latency_ms"`
	Index          IndexStats              `json:"index"`
	Live           engine.LiveStats        `json:"live"`
	Cache          CacheStats              `json:"cache"`
	Latency        map[string]LatencyStats `json:"latency"`
}

// MutationResponse is the JSON body of the POST mutation endpoints: the
// epoch at which the mutation became visible (or the current epoch for a
// no-op), and for /delete whether a live document was removed.
type MutationResponse struct {
	Epoch   uint64 `json:"epoch"`
	Deleted *bool  `json:"deleted,omitempty"`
}

// IngestRequest is the JSON body of POST /ingest.
type IngestRequest struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Body  string `json:"body"`
}

// DeleteRequest is the JSON body of POST /delete.
type DeleteRequest struct {
	ID string `json:"id"`
}

// QueriesResponse is the JSON body of GET /queries: query strings the
// pipeline's log knows about, most popular first (topic queries are
// Zipf-popular by position, then noise queries), so a rank-skewed sampler
// over the list reproduces a realistic head-heavy query mix.
type QueriesResponse struct {
	Queries []string `json:"queries"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		s.fail(w, http.StatusBadRequest, "missing required parameter q")
		return
	}
	p := s.handle.Pipeline

	k := p.Config.K
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			s.fail(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		if v > s.cfg.MaxK {
			v = s.cfg.MaxK
		}
		k = v
	}

	alg := s.cfg.DefaultAlg
	if raw := r.URL.Query().Get("alg"); raw != "" {
		alg = core.Algorithm(raw)
		if !alg.Valid() {
			s.fail(w, http.StatusBadRequest, fmt.Sprintf("unknown alg %q (valid: %v)", raw, core.Algorithms))
			return
		}
	}

	s.requests.Add(1)

	// Bounded worker pool: block for a slot, shedding on timeout or
	// client disconnect.
	timeout := time.NewTimer(s.cfg.QueueTimeout)
	defer timeout.Stop()
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		s.rejected.Add(1)
		s.fail(w, http.StatusServiceUnavailable, "client gave up while queued")
		return
	case <-timeout.C:
		s.rejected.Add(1)
		s.fail(w, http.StatusServiceUnavailable, "worker pool saturated, retry later")
		return
	}
	s.inFlight.Add(1)
	began := time.Now()
	var (
		selected []core.Selected
		specs    []suggest.Specialization
		hit      bool
		err      error
	)
	func() {
		// Release the slot via defer: a panic in the pipeline is recovered
		// per-connection by net/http, and without the defer it would leak
		// a worker token forever.
		defer func() {
			s.inFlight.Add(-1)
			<-s.sem
		}()
		// The request context rides into the retrieval fan-out: when the
		// client disconnects mid-search, the shard workers stop instead
		// of finishing a SERP nobody will read.
		selected, specs, hit, err = s.handle.DiversifyCachedKCtx(r.Context(), q, alg, k)
	}()
	took := time.Since(began)
	if err != nil {
		// Only a canceled/expired request context reaches here; the
		// client is gone, but account for the aborted search.
		s.rejected.Add(1)
		s.fail(w, http.StatusServiceUnavailable, "request canceled during retrieval")
		return
	}

	s.searches.Add(1)
	s.serveNano.Add(took.Nanoseconds())
	if hit {
		s.cacheHits.Add(1)
	}
	if len(specs) > 0 {
		s.ambiguous.Add(1)
	}

	resp := SearchResponse{
		Query:           q,
		NormalizedQuery: text.NormalizeQuery(q),
		Algorithm:       string(alg),
		K:               k,
		Ambiguous:       len(specs) > 0,
		CacheHit:        hit,
		TookMicros:      took.Microseconds(),
		Results:         make([]SearchResult, len(selected)),
	}
	for _, sp := range specs {
		resp.Specializations = append(resp.Specializations, SpecializationInfo{Query: sp.Query, Prob: sp.Prob})
	}
	for i, sel := range selected {
		resp.Results[i] = SearchResult{ID: sel.ID, Rank: sel.Rank, Score: sel.Score, Rel: sel.Rel}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	p := s.handle.Pipeline
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Docs:          p.Engine.NumDocs(),
		LogRecords:    p.Log.Len(),
		Topics:        len(p.Testbed.Topics),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.handle.CacheStats()
	searches := s.searches.Load()
	avgMs := 0.0
	if searches > 0 {
		avgMs = float64(s.serveNano.Load()) / float64(searches) / 1e6
	}
	latency := make(map[string]LatencyStats, len(s.latency))
	for endpoint, hist := range s.latency {
		latency[endpoint] = hist.snapshot()
	}
	seg := s.handle.Pipeline.Engine.Segments()
	storage := seg.Index().Storage()
	decoded, skipped := index.BlockIOStats()
	s.writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds:  int64(time.Since(s.start).Seconds()),
		Workers:        s.cfg.Workers,
		Requests:       s.requests.Load(),
		Errors:         s.errors.Load(),
		Rejected:       s.rejected.Load(),
		InFlight:       s.inFlight.Load(),
		Searches:       searches,
		Ambiguous:      s.ambiguous.Load(),
		CacheHits:      s.cacheHits.Load(),
		Ingests:        s.ingests.Load(),
		Deletes:        s.deletes.Load(),
		AvgLatencyMsec: avgMs,
		Index: IndexStats{
			Shards:          seg.NumShards(),
			DocsPerShard:    seg.ShardSizes(),
			Pruning:         s.handle.Pipeline.Engine.PruningEnabled(),
			MaxScoreModels:  seg.Index().MaxScoreKeys(),
			BlockSize:       storage.BlockSize,
			Postings:        storage.Postings,
			PostingBytes:    storage.Bytes,
			BytesPerPosting: storage.BytesPerPosting,
			BlocksDecoded:   decoded,
			BlocksSkipped:   skipped,
		},
		Live:    s.handle.Pipeline.Engine.Live(),
		Latency: latency,
		Cache: CacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			Capacity:  cs.Capacity,
			HitRate:   cs.HitRate(),
		},
	})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad ingest body: "+err.Error())
		return
	}
	if req.ID == "" {
		s.fail(w, http.StatusBadRequest, "missing required field id")
		return
	}
	epoch, err := s.handle.Pipeline.Engine.Ingest(engine.Document{ID: req.ID, Title: req.Title, Body: req.Body})
	if err != nil {
		// The document is buffered and searchable; only sealing it durably
		// failed. Surface that as a server-side error.
		s.fail(w, http.StatusInternalServerError, "ingest flush failed: "+err.Error())
		return
	}
	s.ingests.Add(1)
	s.writeJSON(w, http.StatusOK, MutationResponse{Epoch: epoch})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad delete body: "+err.Error())
		return
	}
	if req.ID == "" {
		s.fail(w, http.StatusBadRequest, "missing required field id")
		return
	}
	epoch, deleted := s.handle.Pipeline.Engine.Delete(req.ID)
	if deleted {
		s.deletes.Add(1)
	}
	s.writeJSON(w, http.StatusOK, MutationResponse{Epoch: epoch, Deleted: &deleted})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	epoch, err := s.handle.Pipeline.Engine.Flush()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "flush failed: "+err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, MutationResponse{Epoch: epoch})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	epoch, err := s.handle.Pipeline.Engine.Compact()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "compaction failed: "+err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, MutationResponse{Epoch: epoch})
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	p := s.handle.Pipeline
	var qs []string
	for _, topic := range p.Testbed.Topics {
		qs = append(qs, topic.Query)
	}
	// A slice of the noise tail: enough distinct cold queries to exercise
	// misses and evictions without dwarfing the ambiguous head.
	noise := p.Config.Log.NoiseVocab
	if noise > 4*len(qs) {
		noise = 4 * len(qs)
	}
	for i := 0; i < noise; i++ {
		qs = append(qs, synth.NoiseQuery(i))
	}
	s.writeJSON(w, http.StatusOK, QueriesResponse{Queries: qs})
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.errors.Add(1)
	s.writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
