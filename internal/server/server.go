// Package server is the serving subsystem: it exposes a warm
// diversification Pipeline over an HTTP/JSON API, the concrete
// realization of the paper's §6 outlook ("a search architecture
// performing the diversification task in parallel with the document
// scoring phase") scaled from one query to a query stream.
//
// A Server owns a repro.ServeHandle (pipeline + sharded LRU artifact
// cache) and a bounded worker pool: at most Config.Workers requests
// diversify concurrently, the rest queue up to Config.QueueTimeout and
// are then shed with 503 — under overload the server degrades by
// rejecting, never by collapsing. Endpoints:
//
//	GET  /search?q=…&k=…&alg=…  diversified SERP as JSON
//	GET  /healthz               liveness + collection summary
//	GET  /stats                 worker pool, cache and lifecycle counters
//	GET  /queries               known query strings, popularity-ordered
//	                            (the replay corpus for cmd/loadgen)
//	POST /ingest                add/replace one document in the live index
//	POST /delete                remove one document from the live index
//	POST /flush                 seal the write buffer into a segment
//	POST /compact               fold segments+tombstones into a fresh base
//
// Mutations bypass the search worker pool — the engine serializes them
// internally and searches never block on them (they run against the
// previous atomically-published snapshot until the epoch swap).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/suggest"
	"repro/internal/synth"
	"repro/internal/text"
)

// Config tunes the serving layer. The zero value is usable: every field
// has a sensible default applied by New.
type Config struct {
	// Workers bounds the number of concurrent diversifications. Default 8.
	Workers int
	// QueueTimeout is how long a request waits for a worker slot before
	// being shed with 503. Default 5s.
	QueueTimeout time.Duration
	// DefaultAlg answers requests that do not pass ?alg=. Default
	// optselect (the paper's contribution).
	DefaultAlg core.Algorithm
	// MaxK caps the per-request result size. Default 100.
	MaxK int
	// DefaultBudget, when positive, bounds each /search end to end
	// (queueing included): the request context gets this deadline, which
	// a distributed Searcher propagates into scatter sub-budgets and
	// worker-side stop decisions. Per-request X-Search-Budget headers
	// override it. Default 0: no deadline beyond the client's.
	DefaultBudget time.Duration
}

// Headers carrying the deadline/degradation contract between clients
// and the serving tier.
const (
	// HeaderSearchBudget is a client's per-request total budget for
	// /search, as a Go duration string (e.g. "250ms"); it overrides
	// Config.DefaultBudget. Invalid values are a 400.
	HeaderSearchBudget = "X-Search-Budget"
	// HeaderDegraded is set to "true" on responses assembled from a
	// partial candidate set (a shard dropped in partial-results mode);
	// the body carries the same marker in its degraded field.
	HeaderDegraded = "X-Degraded"
	// HeaderHedged is set to "true" when answering the request involved
	// a hedged scatter attempt (latency salvage; results are NOT
	// affected — hedges race identical reads of the same snapshot).
	HeaderHedged = "X-Hedged"
)

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 5 * time.Second
	}
	if c.DefaultAlg == "" {
		c.DefaultAlg = core.AlgOptSelect
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	return c
}

// Server serves diversified SERPs from a warm pipeline. Create with New;
// all exported methods are safe for concurrent use.
//
// A Server can be created BEFORE its pipeline finishes building (New with
// a nil handle): it answers /healthz (liveness — the process is up) but
// reports not-ready on /readyz and sheds every pipeline-backed endpoint
// with 503 until Publish installs the handle. This is the split a
// replicated deployment needs — the distributed router's health probes
// watch /readyz, so a worker that is still indexing (or re-loading after
// a crash) is never routed to, while /healthz keeps the process manager
// from killing it during the build.
type Server struct {
	handle atomic.Pointer[repro.ServeHandle]
	cfg    Config
	start  time.Time
	mux    *http.ServeMux
	sem    chan struct{} // worker pool: one token per concurrent search

	// holdSearch, when non-nil, runs inside the worker slot before the
	// diversification — a test seam that lets the drain tests pin
	// in-flight requests deterministically. Set before serving starts;
	// never used in production paths.
	holdSearch func()

	requests  atomic.Int64 // /search requests admitted past parsing
	errors    atomic.Int64 // 4xx/5xx responses on /search
	rejected  atomic.Int64 // 503s from a saturated worker pool
	inFlight  atomic.Int64 // searches currently holding a worker slot
	searches  atomic.Int64 // completed searches
	ambiguous atomic.Int64 // completed searches that diversified
	cacheHits atomic.Int64 // completed searches served from cached artifacts
	serveNano atomic.Int64 // cumulative in-worker latency
	ingests   atomic.Int64 // documents accepted by POST /ingest
	deletes   atomic.Int64 // documents removed by POST /delete
	degraded  atomic.Int64 // searches answered from a partial candidate set
	hedged    atomic.Int64 // searches whose scatter involved a hedge

	// latency histograms per endpoint, measured around the whole handler
	// (for /search that includes worker-pool queueing, unlike serveNano
	// which is in-worker only).
	latency map[string]*latencyHistogram
}

// New wraps the handle in a Server with the given configuration. A nil
// handle creates a not-ready server (see Server); install the handle
// with Publish once the pipeline is built.
func New(h *repro.ServeHandle, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		start:   time.Now(),
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.Workers),
		latency: make(map[string]*latencyHistogram),
	}
	if h != nil {
		s.handle.Store(h)
	}
	s.mux.HandleFunc("GET /search", s.instrument("/search", s.handleSearch))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	s.mux.HandleFunc("GET /queries", s.instrument("/queries", s.handleQueries))
	s.mux.HandleFunc("POST /ingest", s.instrument("/ingest", s.handleIngest))
	s.mux.HandleFunc("POST /delete", s.instrument("/delete", s.handleDelete))
	s.mux.HandleFunc("POST /flush", s.instrument("/flush", s.handleFlush))
	s.mux.HandleFunc("POST /compact", s.instrument("/compact", s.handleCompact))
	return s
}

// Publish installs the serving handle and flips the server ready: from
// this point /readyz reports 200 and the pipeline-backed endpoints
// serve. Publishing is an atomic pointer store — requests racing it see
// either the warming-up 503 or the full pipeline, never a torn state.
func (s *Server) Publish(h *repro.ServeHandle) { s.handle.Store(h) }

// Ready reports whether the pipeline handle has been published.
func (s *Server) Ready() bool { return s.handle.Load() != nil }

// ready returns the handle, or sheds the request with 503 and reports
// false — every pipeline-backed handler gates on it first.
func (s *Server) ready(w http.ResponseWriter) (*repro.ServeHandle, bool) {
	h := s.handle.Load()
	if h == nil {
		s.fail(w, http.StatusServiceUnavailable, "warming up: index still loading")
		return nil, false
	}
	return h, true
}

// instrument wraps a handler with the endpoint's latency histogram. The
// histogram map is completed at construction time and read-only after,
// so recording needs no lock.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := &latencyHistogram{}
	s.latency[endpoint] = hist
	return func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		h(w, r)
		hist.observe(time.Since(began))
	}
}

// Handler returns the HTTP handler tree, for mounting in an http.Server
// or an httptest.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// SearchResult is one SERP entry of a search response.
type SearchResult struct {
	ID    string  `json:"id"`
	Rank  int     `json:"rank"` // 1-based rank in the original R_q
	Score float64 `json:"score"`
	Rel   float64 `json:"rel"` // P(d|q)
}

// SpecializationInfo is one mined specialization in a search response.
type SpecializationInfo struct {
	Query string  `json:"query"`
	Prob  float64 `json:"prob"` // P(q'|q), Definition 1
}

// SearchResponse is the JSON body of GET /search.
type SearchResponse struct {
	Query           string `json:"query"`
	NormalizedQuery string `json:"normalized_query"`
	Algorithm       string `json:"algorithm"`
	K               int    `json:"k"`
	Ambiguous       bool   `json:"ambiguous"`
	CacheHit        bool   `json:"cache_hit"`
	// Degraded marks a response assembled from a partial candidate set
	// (a shard was down in partial-results mode). It omits when false so
	// healthy responses stay byte-identical to a single-process server's.
	// Hedging deliberately has NO body field: a hedged response carries
	// identical result bytes (hedges race identical reads of the same
	// snapshot), so it is flagged out-of-band via X-Hedged only and the
	// byte-identity gate keeps covering it.
	Degraded        bool                 `json:"degraded,omitempty"`
	TookMicros      int64                `json:"took_us"`
	Specializations []SpecializationInfo `json:"specializations,omitempty"`
	Results         []SearchResult       `json:"results"`
}

// HealthResponse is the JSON body of GET /healthz (liveness: always 200
// while the process answers; Ready mirrors /readyz for convenience).
type HealthResponse struct {
	Status        string `json:"status"`
	Ready         bool   `json:"ready"`
	UptimeSeconds int64  `json:"uptime_s"`
	Docs          int    `json:"docs"`
	LogRecords    int    `json:"log_records"`
	Topics        int    `json:"topics"`
}

// ReadyResponse is the JSON body of GET /readyz: 200 with Ready=true
// once the pipeline handle is published, 503 with a reason before that.
// Health probes (the distributed router's, an orchestrator's) should
// watch this, not /healthz — a worker mid-build is alive but must not
// receive traffic.
type ReadyResponse struct {
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
	Docs   int    `json:"docs,omitempty"`
}

// CacheStats is the cache section of a stats response.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	HitRate   float64 `json:"hit_rate"`
}

// IndexStats is the index-segment section of a stats response: the shard
// fan-out every retrieval pays, with the per-shard document counts of the
// partition, whether MaxScore dynamic pruning is live and which scoring
// functions have precomputed max-score tables, plus the posting-storage
// footprint (block size 0 = flat layout) and the process-wide block I/O
// counters — blocks decoded versus blocks skipped by header, the
// observable win of Block-Max skipping.
type IndexStats struct {
	Shards          int      `json:"shards"`
	DocsPerShard    []int    `json:"docs_per_shard"`
	Pruning         bool     `json:"pruning"`
	MaxScoreModels  []string `json:"max_score_models,omitempty"`
	BlockSize       int      `json:"block_size"`
	Postings        int64    `json:"postings"`
	PostingBytes    int64    `json:"posting_bytes"`
	BytesPerPosting float64  `json:"bytes_per_posting"`
	BlocksDecoded   int64    `json:"blocks_decoded"`
	BlocksSkipped   int64    `json:"blocks_skipped"`
}

// FusedStats mirrors the exec package's process-wide fused-plan
// counters: how often queries ran the fused single-scan plan vs the
// staged one, how many per-aspect heap entries were displaced by better
// candidates, and how many posting blocks the aspect retrievals skipped
// via their (small-k, fast-forming) thresholds. The skip counter is
// attribution-approximate under concurrency — see exec.Counters.
type FusedStats struct {
	FusedQueries        uint64 `json:"fused_queries"`
	StagedQueries       uint64 `json:"staged_queries"`
	AspectHeapEvictions uint64 `json:"aspect_heap_evictions"`
	AspectBlocksSkipped uint64 `json:"aspect_blocks_skipped"`
}

// StatsResponse is the JSON body of GET /stats.
type StatsResponse struct {
	UptimeSeconds  int64                   `json:"uptime_s"`
	Workers        int                     `json:"workers"`
	Requests       int64                   `json:"requests"`
	Errors         int64                   `json:"errors"`
	Rejected       int64                   `json:"rejected"`
	InFlight       int64                   `json:"in_flight"`
	Searches       int64                   `json:"searches"`
	Ambiguous      int64                   `json:"ambiguous"`
	CacheHits      int64                   `json:"cache_hits"`
	Ingests        int64                   `json:"ingests"`
	Deletes        int64                   `json:"deletes"`
	Degraded       int64                   `json:"degraded"`
	Hedged         int64                   `json:"hedged"`
	AvgLatencyMsec float64                 `json:"avg_latency_ms"`
	Index          IndexStats              `json:"index"`
	Fused          FusedStats              `json:"fused"`
	Live           engine.LiveStats        `json:"live"`
	Cache          CacheStats              `json:"cache"`
	Latency        map[string]LatencyStats `json:"latency"`
}

// MutationResponse is the JSON body of the POST mutation endpoints: the
// epoch at which the mutation became visible (or the current epoch for a
// no-op), and for /delete whether a live document was removed.
type MutationResponse struct {
	Epoch   uint64 `json:"epoch"`
	Deleted *bool  `json:"deleted,omitempty"`
}

// IngestRequest is the JSON body of POST /ingest.
type IngestRequest struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Body  string `json:"body"`
}

// DeleteRequest is the JSON body of POST /delete.
type DeleteRequest struct {
	ID string `json:"id"`
}

// QueriesResponse is the JSON body of GET /queries: query strings the
// pipeline's log knows about, most popular first (topic queries are
// Zipf-popular by position, then noise queries), so a rank-skewed sampler
// over the list reproduces a realistic head-heavy query mix.
type QueriesResponse struct {
	Queries []string `json:"queries"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		s.fail(w, http.StatusBadRequest, "missing required parameter q")
		return
	}
	h, ok := s.ready(w)
	if !ok {
		return
	}
	p := h.Pipeline

	k := p.Config.K
	if raw := r.URL.Query().Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			s.fail(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		if v > s.cfg.MaxK {
			v = s.cfg.MaxK
		}
		k = v
	}

	alg := s.cfg.DefaultAlg
	if raw := r.URL.Query().Get("alg"); raw != "" {
		alg = core.Algorithm(raw)
		if !alg.Valid() {
			s.fail(w, http.StatusBadRequest, fmt.Sprintf("unknown alg %q (valid: %v)", raw, core.Algorithms))
			return
		}
	}

	// Deadline propagation starts here: the total budget (flag default,
	// overridden per request by X-Search-Budget) becomes the request
	// context's deadline, covering queueing, retrieval — where a
	// distributed Searcher carves scatter sub-budgets from it and
	// advertises the remainder to workers — and diversification.
	budget := s.cfg.DefaultBudget
	if raw := r.Header.Get(HeaderSearchBudget); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			s.fail(w, http.StatusBadRequest, "invalid "+HeaderSearchBudget+" (want a positive Go duration, e.g. 250ms)")
			return
		}
		budget = d
	}
	ctx := r.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	s.requests.Add(1)

	// Bounded worker pool: block for a slot, shedding on timeout, spent
	// budget, or client disconnect.
	timeout := time.NewTimer(s.cfg.QueueTimeout)
	defer timeout.Stop()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.rejected.Add(1)
		if r.Context().Err() == nil {
			s.fail(w, http.StatusServiceUnavailable, "request budget spent while queued")
		} else {
			s.fail(w, http.StatusServiceUnavailable, "client gave up while queued")
		}
		return
	case <-timeout.C:
		s.rejected.Add(1)
		s.fail(w, http.StatusServiceUnavailable, "worker pool saturated, retry later")
		return
	}
	s.inFlight.Add(1)
	began := time.Now()
	var (
		selected []core.Selected
		specs    []suggest.Specialization
		hit      bool
		info     repro.SearchInfo
		err      error
	)
	func() {
		// Release the slot via defer: a panic in the pipeline is recovered
		// per-connection by net/http, and without the defer it would leak
		// a worker token forever.
		defer func() {
			s.inFlight.Add(-1)
			<-s.sem
		}()
		if s.holdSearch != nil {
			s.holdSearch()
		}
		// The request context rides into the retrieval fan-out: when the
		// client disconnects (or the budget runs out) mid-search, the
		// shard workers stop instead of finishing a SERP nobody will
		// read.
		selected, specs, hit, info, err = h.DiversifyServe(ctx, q, alg, k)
	}()
	took := time.Since(began)
	if err != nil {
		// A canceled/expired request context (the client is gone), or —
		// behind a distributed Searcher — a scatter failure: some shard
		// had no reachable replica within the retry budget. Either way
		// the search did not complete; shed it.
		s.rejected.Add(1)
		s.fail(w, http.StatusServiceUnavailable, "retrieval aborted: "+err.Error())
		return
	}

	s.searches.Add(1)
	s.serveNano.Add(took.Nanoseconds())
	if hit {
		s.cacheHits.Add(1)
	}
	if len(specs) > 0 {
		s.ambiguous.Add(1)
	}
	if info.Degraded {
		s.degraded.Add(1)
		w.Header().Set(HeaderDegraded, "true")
	}
	if info.Hedged {
		s.hedged.Add(1)
		w.Header().Set(HeaderHedged, "true")
	}

	resp := SearchResponse{
		Query:           q,
		NormalizedQuery: text.NormalizeQuery(q),
		Algorithm:       string(alg),
		K:               k,
		Ambiguous:       len(specs) > 0,
		CacheHit:        hit,
		Degraded:        info.Degraded,
		TookMicros:      took.Microseconds(),
		Results:         make([]SearchResult, len(selected)),
	}
	for _, sp := range specs {
		resp.Specializations = append(resp.Specializations, SpecializationInfo{Query: sp.Query, Prob: sp.Prob})
	}
	for i, sel := range selected {
		resp.Results[i] = SearchResult{ID: sel.ID, Rank: sel.Rank, Score: sel.Score, Rel: sel.Rel}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness only: 200 as long as the process answers, even while the
	// index is still building. Readiness is /readyz's job.
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	}
	if h := s.handle.Load(); h != nil {
		p := h.Pipeline
		resp.Ready = true
		resp.Docs = p.Engine.NumDocs()
		resp.LogRecords = p.Log.Len()
		resp.Topics = len(p.Testbed.Topics)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.handle.Load()
	if h == nil {
		s.writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{
			Ready:  false,
			Reason: "index still loading",
		})
		return
	}
	s.writeJSON(w, http.StatusOK, ReadyResponse{
		Ready: true,
		Docs:  h.Pipeline.Engine.NumDocs(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, ok := s.StatsSnapshot()
	if !ok {
		s.fail(w, http.StatusServiceUnavailable, "warming up: index still loading")
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// StatsSnapshot assembles the /stats payload; ok is false while the
// server is not ready. Exported so the distributed router can embed the
// serving-layer stats inside its own /stats document.
func (s *Server) StatsSnapshot() (StatsResponse, bool) {
	h := s.handle.Load()
	if h == nil {
		return StatsResponse{}, false
	}
	cs := h.CacheStats()
	searches := s.searches.Load()
	avgMs := 0.0
	if searches > 0 {
		avgMs = float64(s.serveNano.Load()) / float64(searches) / 1e6
	}
	latency := make(map[string]LatencyStats, len(s.latency))
	for endpoint, hist := range s.latency {
		latency[endpoint] = hist.snapshot()
	}
	seg := h.Pipeline.Engine.Segments()
	storage := seg.Index().Storage()
	decoded, skipped := index.BlockIOStats()
	fused := exec.Stats()
	return StatsResponse{
		UptimeSeconds:  int64(time.Since(s.start).Seconds()),
		Workers:        s.cfg.Workers,
		Requests:       s.requests.Load(),
		Errors:         s.errors.Load(),
		Rejected:       s.rejected.Load(),
		InFlight:       s.inFlight.Load(),
		Searches:       searches,
		Ambiguous:      s.ambiguous.Load(),
		CacheHits:      s.cacheHits.Load(),
		Ingests:        s.ingests.Load(),
		Deletes:        s.deletes.Load(),
		Degraded:       s.degraded.Load(),
		Hedged:         s.hedged.Load(),
		AvgLatencyMsec: avgMs,
		Index: IndexStats{
			Shards:          seg.NumShards(),
			DocsPerShard:    seg.ShardSizes(),
			Pruning:         h.Pipeline.Engine.PruningEnabled(),
			MaxScoreModels:  seg.Index().MaxScoreKeys(),
			BlockSize:       storage.BlockSize,
			Postings:        storage.Postings,
			PostingBytes:    storage.Bytes,
			BytesPerPosting: storage.BytesPerPosting,
			BlocksDecoded:   decoded,
			BlocksSkipped:   skipped,
		},
		Fused: FusedStats{
			FusedQueries:        fused.FusedQueries,
			StagedQueries:       fused.StagedQueries,
			AspectHeapEvictions: fused.AspectHeapEvictions,
			AspectBlocksSkipped: fused.AspectBlocksSkipped,
		},
		Live:    h.Pipeline.Engine.Live(),
		Latency: latency,
		Cache: CacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			Capacity:  cs.Capacity,
			HitRate:   cs.HitRate(),
		},
	}, true
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad ingest body: "+err.Error())
		return
	}
	if req.ID == "" {
		s.fail(w, http.StatusBadRequest, "missing required field id")
		return
	}
	h, ok := s.ready(w)
	if !ok {
		return
	}
	epoch, err := h.Pipeline.Engine.Ingest(engine.Document{ID: req.ID, Title: req.Title, Body: req.Body})
	if err != nil {
		// The document is buffered and searchable; only sealing it durably
		// failed. Surface that as a server-side error.
		s.fail(w, http.StatusInternalServerError, "ingest flush failed: "+err.Error())
		return
	}
	s.ingests.Add(1)
	s.writeJSON(w, http.StatusOK, MutationResponse{Epoch: epoch})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad delete body: "+err.Error())
		return
	}
	if req.ID == "" {
		s.fail(w, http.StatusBadRequest, "missing required field id")
		return
	}
	h, ok := s.ready(w)
	if !ok {
		return
	}
	epoch, deleted := h.Pipeline.Engine.Delete(req.ID)
	if deleted {
		s.deletes.Add(1)
	}
	s.writeJSON(w, http.StatusOK, MutationResponse{Epoch: epoch, Deleted: &deleted})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	h, ok := s.ready(w)
	if !ok {
		return
	}
	epoch, err := h.Pipeline.Engine.Flush()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "flush failed: "+err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, MutationResponse{Epoch: epoch})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	h, ok := s.ready(w)
	if !ok {
		return
	}
	epoch, err := h.Pipeline.Engine.Compact()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "compaction failed: "+err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, MutationResponse{Epoch: epoch})
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	h, ok := s.ready(w)
	if !ok {
		return
	}
	p := h.Pipeline
	var qs []string
	for _, topic := range p.Testbed.Topics {
		qs = append(qs, topic.Query)
	}
	// A slice of the noise tail: enough distinct cold queries to exercise
	// misses and evictions without dwarfing the ambiguous head.
	noise := p.Config.Log.NoiseVocab
	if noise > 4*len(qs) {
		noise = 4 * len(qs)
	}
	for i := 0; i < noise; i++ {
		qs = append(qs, synth.NoiseQuery(i))
	}
	s.writeJSON(w, http.StatusOK, QueriesResponse{Queries: qs})
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.errors.Add(1)
	s.writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
