package topk

import (
	"math"
	"sort"
)

// Bounded keeps the best B items seen so far, by score (with the package's
// deterministic tie-break). Internally it is a min-heap of size at most B:
// pushing onto a full heap evicts the current worst item when the new item
// is better. This is the structure OptSelect uses for its
// per-specialization heaps of size floor(k*P(q'|q))+1: each insertion costs
// O(log B), which is the source of the algorithm's O(n log k) bound.
type Bounded[T any] struct {
	bound     int
	items     []Item[T]
	evictions uint64
}

// NewBounded returns a collector keeping the best b items. b must be >= 0;
// a collector with b == 0 rejects everything.
func NewBounded[T any](b int) *Bounded[T] {
	if b < 0 {
		b = 0
	}
	cap := b
	if cap > 1024 {
		cap = 1024 // avoid huge upfront allocations for large bounds
	}
	return &Bounded[T]{bound: b, items: make([]Item[T], 0, cap)}
}

// Bound returns the maximum number of items retained.
func (h *Bounded[T]) Bound() int { return h.bound }

// Len reports the number of items currently retained.
func (h *Bounded[T]) Len() int { return len(h.items) }

// Push offers an item; it reports whether the item was retained (it may
// later be evicted by better items).
func (h *Bounded[T]) Push(value T, score float64, tie int64) bool {
	return h.PushItem(Item[T]{Value: value, Score: score, Tie: tie})
}

// PushItem offers a prebuilt item.
func (h *Bounded[T]) PushItem(it Item[T]) bool {
	if h.bound == 0 {
		return false
	}
	if len(h.items) < h.bound {
		h.items = append(h.items, it)
		h.up(len(h.items) - 1)
		return true
	}
	// Full: replace the root (worst retained) only if the new item is better.
	if !better(it, h.items[0]) {
		return false
	}
	h.items[0] = it
	h.down(0)
	h.evictions++
	return true
}

// Evictions reports how many retained items were displaced by better ones
// (full-heap replace-root pushes). It is a measure of how contended the
// heap was: a spec heap with many evictions saw far more useful candidates
// than its quota could hold. Serving surfaces the aggregate in /stats.
func (h *Bounded[T]) Evictions() uint64 { return h.evictions }

// Threshold returns the score a new item must beat to be retained: the
// worst retained score once the collector is full. Until then no score is
// excluded and Threshold reports (-Inf, false); a collector with bound 0
// retains nothing and reports (+Inf, true). This is the heap peek the
// MaxScore evaluator prunes against — an item scoring at most the
// threshold loses to every retained item (ties break toward earlier
// insertions, which in document-ordered evaluation have smaller tie keys).
func (h *Bounded[T]) Threshold() (float64, bool) {
	if h.bound == 0 {
		return math.Inf(1), true
	}
	if len(h.items) < h.bound {
		return math.Inf(-1), false
	}
	return h.items[0].Score, true
}

// Worst returns the lowest-scoring retained item without removing it.
func (h *Bounded[T]) Worst() (Item[T], bool) {
	if len(h.items) == 0 {
		var zero Item[T]
		return zero, false
	}
	return h.items[0], true
}

// PopWorst removes and returns the lowest-scoring retained item.
func (h *Bounded[T]) PopWorst() (Item[T], bool) {
	if len(h.items) == 0 {
		var zero Item[T]
		return zero, false
	}
	worst := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return worst, true
}

// Descending returns the retained items ordered best-first. The heap is
// left intact; the returned slice is freshly allocated.
func (h *Bounded[T]) Descending() []Item[T] {
	out := make([]Item[T], len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool { return better(out[i], out[j]) })
	return out
}

// Drain empties the heap and returns the items ordered best-first.
func (h *Bounded[T]) Drain() []Item[T] {
	out := h.Descending()
	h.items = h.items[:0]
	return out
}

// min-heap order: the *worst* item (lowest score / highest tie) at the root,
// i.e. the root is the item every other retained item "betters".
func (h *Bounded[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !better(h.items[parent], h.items[i]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Bounded[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && better(h.items[worst], h.items[l]) {
			worst = l
		}
		if r < n && better(h.items[worst], h.items[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}

// Select returns the k best items of input best-first, using a bounded heap
// (O(n log k)). It is a convenience for callers that have a full slice.
func Select[T any](items []Item[T], k int) []Item[T] {
	h := NewBounded[T](k)
	for _, it := range items {
		h.PushItem(it)
	}
	return h.Drain()
}
