package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMaxHeapBasicOrder(t *testing.T) {
	h := NewMax[string](4)
	h.Push("b", 2, 0)
	h.Push("a", 1, 0)
	h.Push("d", 4, 0)
	h.Push("c", 3, 0)

	want := []string{"d", "c", "b", "a"}
	for i, w := range want {
		it, ok := h.Pop()
		if !ok {
			t.Fatalf("pop %d: heap unexpectedly empty", i)
		}
		if it.Value != w {
			t.Errorf("pop %d = %q, want %q", i, it.Value, w)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Error("pop on empty heap reported ok")
	}
}

func TestMaxHeapPeek(t *testing.T) {
	h := NewMax[int](0)
	if _, ok := h.Peek(); ok {
		t.Fatal("peek on empty heap reported ok")
	}
	h.Push(7, 7, 0)
	h.Push(9, 9, 0)
	it, ok := h.Peek()
	if !ok || it.Value != 9 {
		t.Fatalf("peek = %v,%v want 9,true", it.Value, ok)
	}
	if h.Len() != 2 {
		t.Fatalf("peek mutated heap: len = %d", h.Len())
	}
}

func TestMaxHeapTieBreak(t *testing.T) {
	h := NewMax[string](3)
	h.Push("late", 1.0, 5)
	h.Push("early", 1.0, 1)
	h.Push("mid", 1.0, 3)

	want := []string{"early", "mid", "late"}
	for i, w := range want {
		it, _ := h.Pop()
		if it.Value != w {
			t.Errorf("pop %d = %q, want %q (tie-break must prefer lower tie)", i, it.Value, w)
		}
	}
}

func TestMaxHeapSortsRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(200) + 1
		h := NewMax[int](n)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(50)) // deliberately many ties
			h.Push(i, scores[i], int64(i))
		}
		prev, prevTie := 1e18, int64(-1)
		for h.Len() > 0 {
			it, _ := h.Pop()
			if it.Score > prev {
				t.Fatalf("trial %d: scores out of order: %f after %f", trial, it.Score, prev)
			}
			if it.Score == prev && it.Tie < prevTie {
				t.Fatalf("trial %d: tie order violated", trial)
			}
			prev, prevTie = it.Score, it.Tie
		}
	}
}

func TestBoundedKeepsBestB(t *testing.T) {
	h := NewBounded[int](3)
	for i, s := range []float64{5, 1, 9, 3, 7, 2, 8} {
		h.Push(i, s, int64(i))
	}
	got := h.Descending()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	wantScores := []float64{9, 8, 7}
	for i, w := range wantScores {
		if got[i].Score != w {
			t.Errorf("got[%d].Score = %f, want %f", i, got[i].Score, w)
		}
	}
}

func TestBoundedZero(t *testing.T) {
	h := NewBounded[int](0)
	if h.Push(1, 1, 0) {
		t.Error("bound-0 heap retained an item")
	}
	if h.Len() != 0 {
		t.Errorf("len = %d, want 0", h.Len())
	}
	if _, ok := h.Worst(); ok {
		t.Error("Worst on empty heap reported ok")
	}
	if _, ok := h.PopWorst(); ok {
		t.Error("PopWorst on empty heap reported ok")
	}
}

func TestBoundedNegativeBoundTreatedAsZero(t *testing.T) {
	h := NewBounded[int](-4)
	if h.Bound() != 0 {
		t.Fatalf("Bound() = %d, want 0", h.Bound())
	}
	if h.Push(1, 1, 0) {
		t.Error("negative-bound heap retained an item")
	}
}

func TestBoundedRejectsWorseWhenFull(t *testing.T) {
	h := NewBounded[string](2)
	h.Push("a", 10, 0)
	h.Push("b", 20, 1)
	if h.Push("c", 5, 2) {
		t.Error("retained an item worse than the current worst")
	}
	if !h.Push("d", 15, 3) {
		t.Error("rejected an item better than the current worst")
	}
	got := h.Descending()
	if got[0].Value != "b" || got[1].Value != "d" {
		t.Errorf("retained %v, want [b d]", []string{got[0].Value, got[1].Value})
	}
}

func TestBoundedTieOnFullHeapPrefersEarlier(t *testing.T) {
	h := NewBounded[string](1)
	h.Push("first", 1.0, 1)
	if h.Push("second", 1.0, 2) {
		t.Error("equal score with later tie must not evict the earlier item")
	}
	if h.Push("zero", 1.0, 0) != true {
		t.Error("equal score with earlier tie should evict")
	}
	it, _ := h.Worst()
	if it.Value != "zero" {
		t.Errorf("retained %q, want %q", it.Value, "zero")
	}
}

func TestBoundedDrainEmpties(t *testing.T) {
	h := NewBounded[int](5)
	for i := 0; i < 5; i++ {
		h.Push(i, float64(i), int64(i))
	}
	out := h.Drain()
	if len(out) != 5 || h.Len() != 0 {
		t.Fatalf("drain returned %d items, heap len %d", len(out), h.Len())
	}
	for i := 1; i < len(out); i++ {
		if out[i].Score > out[i-1].Score {
			t.Fatal("drain output not descending")
		}
	}
}

func TestSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(300)
		k := rng.Intn(50) + 1
		items := make([]Item[int], n)
		for i := range items {
			items[i] = Item[int]{Value: i, Score: rng.NormFloat64(), Tie: int64(i)}
		}
		got := Select(items, k)

		sorted := make([]Item[int], n)
		copy(sorted, items)
		sort.Slice(sorted, func(i, j int) bool { return better(sorted[i], sorted[j]) })
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("trial %d: len = %d, want %d", trial, len(got), wantLen)
		}
		for i := 0; i < wantLen; i++ {
			if got[i].Value != sorted[i].Value {
				t.Fatalf("trial %d: got[%d] = %v, want %v", trial, i, got[i], sorted[i])
			}
		}
	}
}

// Property: a bounded heap always retains exactly the top-B of the pushed
// multiset, for any input.
func TestBoundedTopBProperty(t *testing.T) {
	prop := func(scores []float64, bRaw uint8) bool {
		b := int(bRaw%16) + 1
		h := NewBounded[int](b)
		items := make([]Item[int], len(scores))
		for i, s := range scores {
			items[i] = Item[int]{Value: i, Score: s, Tie: int64(i)}
			h.PushItem(items[i])
		}
		sort.Slice(items, func(i, j int) bool { return better(items[i], items[j]) })
		want := items
		if len(want) > b {
			want = want[:b]
		}
		got := h.Descending()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Value != want[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Max heap pops in non-increasing score order regardless of input.
func TestMaxHeapOrderProperty(t *testing.T) {
	prop := func(scores []float64) bool {
		h := NewMax[int](len(scores))
		for i, s := range scores {
			h.Push(i, s, int64(i))
		}
		prev := math.Inf(1)
		for h.Len() > 0 {
			it, _ := h.Pop()
			if it.Score > prev {
				return false
			}
			prev = it.Score
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBoundedPush(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	scores := make([]float64, 100000)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewBounded[int](1000)
		for j, s := range scores {
			h.Push(j, s, int64(j))
		}
	}
}
