// Package topk provides bounded and unbounded score-ordered heaps used
// throughout the diversification pipeline: per-specialization candidate
// heaps in OptSelect (Algorithm 2 of the paper), document accumulators in
// the retrieval engine, and generic top-k selection in the evaluation
// harnesses.
//
// All heaps order items by float64 score with a deterministic tie-break on
// an int64 key (lower tie key wins among equal scores), so that algorithm
// output is reproducible across runs and platforms.
package topk

// Item is a scored payload stored in a heap.
type Item[T any] struct {
	Value T
	Score float64
	// Tie breaks equal scores deterministically: among items with the
	// same score, the one with the smaller Tie is considered better.
	Tie int64
}

// better reports whether a should be preferred over b in descending-score
// order (higher score first, then lower tie key).
func better[T any](a, b Item[T]) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Tie < b.Tie
}

// Max is an unbounded max-heap: Pop returns the highest-scoring item.
// The zero value is ready to use.
type Max[T any] struct {
	items []Item[T]
}

// NewMax returns a max-heap with capacity preallocated for n items.
func NewMax[T any](n int) *Max[T] {
	if n < 0 {
		n = 0
	}
	return &Max[T]{items: make([]Item[T], 0, n)}
}

// Len reports the number of items currently in the heap.
func (h *Max[T]) Len() int { return len(h.items) }

// Push inserts value with the given score and tie key.
func (h *Max[T]) Push(value T, score float64, tie int64) {
	h.items = append(h.items, Item[T]{Value: value, Score: score, Tie: tie})
	h.up(len(h.items) - 1)
}

// PushItem inserts a prebuilt item.
func (h *Max[T]) PushItem(it Item[T]) {
	h.items = append(h.items, it)
	h.up(len(h.items) - 1)
}

// Peek returns the best item without removing it.
func (h *Max[T]) Peek() (Item[T], bool) {
	if len(h.items) == 0 {
		var zero Item[T]
		return zero, false
	}
	return h.items[0], true
}

// Pop removes and returns the best (highest-scoring) item.
func (h *Max[T]) Pop() (Item[T], bool) {
	if len(h.items) == 0 {
		var zero Item[T]
		return zero, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top, true
}

func (h *Max[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !better(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Max[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && better(h.items[l], h.items[best]) {
			best = l
		}
		if r < n && better(h.items[r], h.items[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}
