// Command utilityfig regenerates the paper's Figure 1 (average utility
// ratio per number of specializations, AOL-like and MSN-like curves) and,
// with -recall, the Appendix C recall measurement (paper: 61% AOL, 65%
// MSN).
//
//	utilityfig                    # Figure 1 curves
//	utilityfig -recall            # plus Appendix C recall
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	recall := flag.Bool("recall", false, "also run the Appendix C recall measurement")
	sessions := flag.Int("sessions", 12000, "query-log sessions per preset")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	spec := exp.DefaultFigure1Spec()
	spec.Seed = *seed
	spec.Sessions = *sessions

	fmt.Println("== Figure 1: average utility ratio per number of specializations ==")
	res, err := exp.RunFigure1(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "utilityfig:", err)
		os.Exit(1)
	}
	if err := res.Format(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "utilityfig:", err)
		os.Exit(1)
	}

	if *recall {
		fmt.Println("\n== Appendix C: specialization-coverage recall ==")
		rspec := exp.DefaultRecallSpec()
		rspec.Seed = *seed
		rspec.Sessions = *sessions
		results, err := exp.RunRecall(rspec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "utilityfig:", err)
			os.Exit(1)
		}
		exp.FormatRecall(os.Stdout, results)
	}
}
