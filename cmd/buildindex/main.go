// Command buildindex builds a search engine over a corpus and persists it
// to disk (index + document store, single file), so serving tools can
// load it without re-analyzing the collection. Without -corpus it indexes
// a synthetic testbed; with -corpus it reads documents from a TSV file of
// "id<TAB>title<TAB>body" lines.
//
//	buildindex -o engine.bin -topics 20
//	buildindex -o engine.bin -corpus docs.tsv
//	buildindex -o engine.bin -shards 4      # record a 4-segment manifest
//	buildindex -o engine.bin -no-maxscore   # skip the max-score/block-max tables
//	buildindex -o engine.bin -block-size 256  # tune the posting-block capacity
//	buildindex -o engine.bin -no-compress   # flat []Posting layout (no block compression)
//	buildindex -o index.ridx7 -format mmap  # page-aligned RIDX7 image, mmap-servable in place
//
// -format engine (the default) writes an RENG2 engine stream that Load
// decodes onto the heap. -format mmap writes the RIDX7 mapped layout —
// postings, shard partition, max-score tables and raw bodies in wire
// shape with aligned offsets — which `serve -index ... -mmap` (and the
// shard workers behind scripts/failover.sh) serve straight off the page
// cache: no posting decode at startup.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/synth"
)

func main() {
	out := flag.String("o", "engine.bin", "output file")
	corpus := flag.String("corpus", "", "TSV corpus file (id<TAB>title<TAB>body); empty = synthetic")
	topics := flag.Int("topics", 20, "synthetic testbed topics (when -corpus is empty)")
	seed := flag.Int64("seed", 1, "synthetic generator seed")
	shards := flag.Int("shards", 1, "index segments recorded in the shard manifest (serving fans retrieval out over them)")
	noMaxScore := flag.Bool("no-maxscore", false, "skip computing/persisting max-score and block-max tables (loaders rebuild them unless they too disable pruning)")
	blockSize := flag.Int("block-size", 0, "postings per compressed block (0 = default 128)")
	noCompress := flag.Bool("no-compress", false, "store postings flat instead of block-compressed")
	format := flag.String("format", "engine", "output format: engine (RENG2 stream, heap-decoded at load) or mmap (RIDX7 page-aligned image, served in place)")
	flag.Parse()
	if *format != "engine" && *format != "mmap" {
		fmt.Fprintf(os.Stderr, "buildindex: unknown -format %q (engine|mmap)\n", *format)
		os.Exit(2)
	}
	if *format == "mmap" && *noCompress {
		fmt.Fprintln(os.Stderr, "buildindex: -format mmap requires the block-compressed layout (drop -no-compress)")
		os.Exit(2)
	}

	var docs []engine.Document
	if *corpus == "" {
		tb := synth.GenerateTestbed(synth.CorpusSpec{Seed: *seed, NumTopics: *topics})
		docs = tb.Docs
	} else {
		f, err := os.Open(*corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "buildindex:", err)
			os.Exit(1)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fields := strings.SplitN(line, "\t", 3)
			if len(fields) != 3 {
				fmt.Fprintf(os.Stderr, "buildindex: line %d: want 3 tab-separated fields\n", lineNo)
				os.Exit(1)
			}
			docs = append(docs, engine.Document{ID: fields[0], Title: fields[1], Body: fields[2]})
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "buildindex:", err)
			os.Exit(1)
		}
	}

	eng, err := engine.Build(docs, engine.Config{
		Shards:             *shards,
		DisablePruning:     *noMaxScore,
		BlockSize:          *blockSize,
		DisableCompression: *noCompress,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "buildindex:", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buildindex:", err)
		os.Exit(1)
	}
	defer f.Close()
	if *format == "mmap" {
		if _, err := eng.WriteMappedTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "buildindex:", err)
			os.Exit(1)
		}
	} else if err := eng.SaveTo(f); err != nil {
		fmt.Fprintln(os.Stderr, "buildindex:", err)
		os.Exit(1)
	}
	st, _ := f.Stat()
	var size int64
	if st != nil {
		size = st.Size()
	}
	storage := eng.Index().Storage()
	layout := fmt.Sprintf("%d-posting blocks, %.2f B/posting", storage.BlockSize, storage.BytesPerPosting)
	if storage.BlockSize == 0 {
		layout = fmt.Sprintf("flat postings, %.2f B/posting", storage.BytesPerPosting)
	}
	fmt.Fprintf(os.Stderr, "indexed %d documents (%d terms, %d shards, %d max-score tables, %s) -> %s (%.2f MiB)\n",
		eng.NumDocs(), eng.Index().NumTerms(), eng.Segments().NumShards(),
		len(eng.Index().MaxScoreKeys()), layout, *out, float64(size)/(1<<20))
}
