// Command bench runs the repo's benchmark suite through `go test -bench`
// and emits a machine-readable snapshot — the repo's perf trajectory. Each
// run appends one point to the trajectory: commit BENCH_<date>.json at the
// repo root and future sessions can diff ns/op and allocs/op against it.
//
//	bench                            # hot-path set, writes BENCH_<date>.json
//	bench -bench 'Table2' -count 3   # any benchmark regex, best-of-3
//	bench -out /dev/stdout           # print instead of committing a file
//
// The default -bench pattern covers the serving hot paths (utility matrix,
// DAAT retrieval, full Diversify) plus the Table 2 selection algorithms.
// CI runs this as a non-gating job so regressions are visible without
// blocking merges on noisy shared runners.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Point is one benchmark result: the parsed `go test -bench` line.
type Point struct {
	Name       string `json:"name"` // sub-benchmark path without the Benchmark prefix
	Gomaxprocs int    `json:"gomaxprocs"`
	Iters      int64  `json:"iters"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op plus any custom
	// b.ReportMetric units the benchmark emits.
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the file format of BENCH_<date>.json.
type Snapshot struct {
	Schema    int     `json:"schema"`
	Date      string  `json:"date"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Bench     string  `json:"bench_pattern"`
	Count     int     `json:"count"`
	Benchtime string  `json:"benchtime"`
	Points    []Point `json:"benchmarks"`
}

const defaultPattern = "ComputeUtilities|Retrieve|DiversifyFull|Table2$"

func main() {
	pattern := flag.String("bench", defaultPattern, "benchmark regex passed to go test -bench")
	count := flag.Int("count", 1, "-count passed to go test (keep every run in the snapshot)")
	benchtime := flag.String("benchtime", "", "-benchtime passed to go test (empty: go default)")
	pkg := flag.String("pkg", ".", "package pattern to benchmark")
	out := flag.String("out", "", "output path (default BENCH_<date>.json in the working directory)")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *pattern, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkg)

	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		// Still try to salvage parsed lines: a late benchmark failure should
		// not discard the points already measured.
		fmt.Fprintln(os.Stderr, "bench: go test:", err)
		if stdout.Len() == 0 {
			os.Exit(1)
		}
	}

	points := parseBenchOutput(&stdout)
	if len(points) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark lines in go test output")
		os.Exit(1)
	}

	snap := Snapshot{
		Schema:    1,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     *pattern,
		Count:     *count,
		Benchtime: *benchtime,
		Points:    points,
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", snap.Date)
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: %d points -> %s\n", len(points), path)
}

// parseBenchOutput extracts benchmark result lines. The format is
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   1 allocs/op   2.5 custom_unit
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchOutput(r *bytes.Buffer) []Point {
	var points []Point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		procs := runtime.GOMAXPROCS(0)
		if i := strings.LastIndex(name, "-"); i >= 0 {
			if p, err := strconv.Atoi(name[i+1:]); err == nil {
				procs = p
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		metrics := make(map[string]float64, (len(fields)-2)/2)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		points = append(points, Point{Name: name, Gomaxprocs: procs, Iters: iters, Metrics: metrics})
	}
	return points
}
