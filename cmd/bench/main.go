// Command bench runs the repo's benchmark suite through `go test -bench`
// and emits a machine-readable snapshot — the repo's perf trajectory. Each
// run appends one point to the trajectory: commit BENCH_<date>.json at the
// repo root and future sessions can diff ns/op and allocs/op against it.
//
//	bench                            # hot-path set, writes BENCH_<date>.json
//	bench -bench 'Table2' -count 3   # any benchmark regex, best-of-3
//	bench -cpu 1,2                   # sweep GOMAXPROCS (shard fan-out scaling)
//	bench -out /dev/stdout           # print instead of committing a file
//	bench -merge points.jsonl        # fold loadgen -json points into the snapshot
//
// The default -bench pattern covers the serving hot paths (utility matrix,
// DAAT retrieval incl. the sharded fan-out and the block-vs-flat posting
// layouts, batched vs sequential R_q′ scatter-gather, full Diversify) plus
// the Table 2 selection algorithms. After writing the snapshot, bench
// prints a non-gating delta table against the newest committed
// BENCH_*.json (override with -baseline, or -baseline none to skip):
// ns/op per benchmark, plus an index-size line for every point reporting
// a bytes/posting metric. CI runs this as a non-gating job so regressions
// are visible without blocking merges on noisy shared runners.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Point is one benchmark result: the parsed `go test -bench` line.
type Point struct {
	Name       string `json:"name"` // sub-benchmark path without the Benchmark prefix
	Gomaxprocs int    `json:"gomaxprocs"`
	Iters      int64  `json:"iters"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op plus any custom
	// b.ReportMetric units the benchmark emits.
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the file format of BENCH_<date>.json.
type Snapshot struct {
	Schema    int     `json:"schema"`
	Date      string  `json:"date"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Bench     string  `json:"bench_pattern"`
	Count     int     `json:"count"`
	Benchtime string  `json:"benchtime"`
	Points    []Point `json:"benchmarks"`
}

const defaultPattern = "ComputeUtilities|Retrieve|DiversifyFull|FusedDiversify|SpecRetrieval|Table2$|OpenIndex"

// sizeUnit is the custom metric the storage sub-benchmarks report
// (BenchmarkRetrieveLayout's b.ReportMetric) — the posting-storage
// footprint the delta table tracks next to ns/op.
const sizeUnit = "bytes/posting"

// openUnit is the custom metric BenchmarkOpenIndex reports: wall-clock
// milliseconds to open a persisted index (heap decode vs mmap-in-place),
// tracked in the delta table so startup-latency regressions are as
// visible as throughput ones.
const openUnit = "open_ms"

func main() {
	pattern := flag.String("bench", defaultPattern, "benchmark regex passed to go test -bench")
	count := flag.Int("count", 1, "-count passed to go test (keep every run in the snapshot)")
	benchtime := flag.String("benchtime", "", "-benchtime passed to go test (empty: go default)")
	cpu := flag.String("cpu", "", "-cpu passed to go test (GOMAXPROCS list, e.g. 1,2; empty: current)")
	pkg := flag.String("pkg", ".", "package pattern to benchmark")
	out := flag.String("out", "", "output path (default BENCH_<date>.json in the working directory)")
	baseline := flag.String("baseline", "", "snapshot to diff against (default: newest BENCH_*.json in the working directory); \"none\" disables the delta")
	merge := flag.String("merge", "", "JSONL file of externally measured points (loadgen -json output) to fold into the snapshot at -out instead of running go test; same-name points are replaced")
	flag.Parse()

	if *merge != "" {
		if err := mergePoints(*merge, *out); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}

	args := []string{"test", "-run", "^$", "-bench", *pattern, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	if *cpu != "" {
		args = append(args, "-cpu", *cpu)
	}
	args = append(args, *pkg)

	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		// Still try to salvage parsed lines: a late benchmark failure should
		// not discard the points already measured.
		fmt.Fprintln(os.Stderr, "bench: go test:", err)
		if stdout.Len() == 0 {
			os.Exit(1)
		}
	}

	points := parseBenchOutput(&stdout)
	if len(points) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark lines in go test output")
		os.Exit(1)
	}

	snap := Snapshot{
		Schema:    1,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     *pattern,
		Count:     *count,
		Benchtime: *benchtime,
		Points:    points,
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", snap.Date)
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: %d points -> %s\n", len(points), path)
	printDelta(*baseline, path, snap)
}

// mergePoints folds externally measured benchmark points — one JSON
// object per line, the shape loadgen -json writes — into the snapshot at
// outPath, creating it if absent. A point with the same (name,
// gomaxprocs) as an existing one replaces it, so re-running an
// experiment updates the curve instead of duplicating it. This is how
// scripts/scale.sh lands its QPS/p99 replica-scaling points next to the
// go-test benchmarks in the committed BENCH_<date>.json.
func mergePoints(src, outPath string) error {
	raw, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	var incoming []Point
	dec := json.NewDecoder(bytes.NewReader(raw))
	for dec.More() {
		var p Point
		if err := dec.Decode(&p); err != nil {
			return fmt.Errorf("%s: %w", src, err)
		}
		if p.Name == "" {
			return fmt.Errorf("%s: point without a name", src)
		}
		incoming = append(incoming, p)
	}
	if len(incoming) == 0 {
		return fmt.Errorf("%s: no points to merge", src)
	}

	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
	}
	snap := Snapshot{
		Schema:    1,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	if existing, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(existing, &snap); err != nil {
			return fmt.Errorf("%s: %w", outPath, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	replaced := 0
	for _, p := range incoming {
		found := false
		for i := range snap.Points {
			if snap.Points[i].Name == p.Name && snap.Points[i].Gomaxprocs == p.Gomaxprocs {
				snap.Points[i] = p
				found = true
				replaced++
				break
			}
		}
		if !found {
			snap.Points = append(snap.Points, p)
		}
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: merged %d points (%d replaced) -> %s\n", len(incoming), replaced, outPath)
	return nil
}

// printDelta diffs the fresh snapshot against the most recent committed
// BENCH_*.json (or an explicit -baseline) and prints a ns/op delta table
// to stderr. Strictly non-gating: any problem — no baseline, unreadable
// file, disjoint benchmark sets — degrades to a note, never a failure;
// CI stays green on regressions, they just become visible in the log.
func printDelta(baseline, freshPath string, fresh Snapshot) {
	if baseline == "none" {
		return
	}
	if baseline == "" {
		matches, _ := filepath.Glob("BENCH_*.json")
		// BENCH_<date> names sort chronologically; reversed, the newest
		// committed snapshot comes first.
		sort.Sort(sort.Reverse(sort.StringSlice(matches)))
		for _, m := range matches {
			if filepath.Clean(m) != filepath.Clean(freshPath) {
				baseline = m
				break
			}
		}
		if baseline == "" {
			fmt.Fprintln(os.Stderr, "bench: no committed BENCH_*.json to diff against")
			return
		}
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: delta skipped:", err)
		return
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench: delta skipped: %s: %v\n", baseline, err)
		return
	}
	// Key points by (name, gomaxprocs); with -count > 1 the last run wins,
	// matching how the table reads top to bottom.
	type key struct {
		name  string
		procs int
	}
	baseNs := make(map[key]float64, len(base.Points))
	baseSize := make(map[key]float64)
	baseOpen := make(map[key]float64)
	for _, p := range base.Points {
		if v, ok := p.Metrics["ns/op"]; ok {
			baseNs[key{p.Name, p.Gomaxprocs}] = v
		}
		if v, ok := p.Metrics[sizeUnit]; ok {
			baseSize[key{p.Name, p.Gomaxprocs}] = v
		}
		if v, ok := p.Metrics[openUnit]; ok {
			baseOpen[key{p.Name, p.Gomaxprocs}] = v
		}
	}
	fmt.Fprintf(os.Stderr, "bench: delta vs %s (negative = faster; non-gating)\n", baseline)
	matched := 0
	for _, p := range fresh.Points {
		v, ok := p.Metrics["ns/op"]
		if !ok {
			continue
		}
		old, ok := baseNs[key{p.Name, p.Gomaxprocs}]
		if !ok || old == 0 {
			continue
		}
		matched++
		fmt.Fprintf(os.Stderr, "  %-55s %12.0f -> %12.0f ns/op  %+6.1f%%\n",
			fmt.Sprintf("%s-%d", p.Name, p.Gomaxprocs), old, v, 100*(v-old)/old)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "  (no benchmarks in common with the baseline)")
	}
	// Index-size trajectory: any benchmark reporting a bytes/posting
	// metric (the storage sub-benchmarks of BenchmarkRetrieveLayout) gets
	// a delta line too, so a layout change that regresses posting storage
	// is as visible as one that regresses latency. Equally non-gating.
	for _, p := range fresh.Points {
		v, ok := p.Metrics[sizeUnit]
		if !ok {
			continue
		}
		if old, ok := baseSize[key{p.Name, p.Gomaxprocs}]; ok && old != 0 {
			fmt.Fprintf(os.Stderr, "  index size: %-43s %12.2f -> %12.2f %s  %+6.1f%%\n",
				fmt.Sprintf("%s-%d", p.Name, p.Gomaxprocs), old, v, sizeUnit, 100*(v-old)/old)
		} else {
			fmt.Fprintf(os.Stderr, "  index size: %-43s %27.2f %s  (no baseline)\n",
				fmt.Sprintf("%s-%d", p.Name, p.Gomaxprocs), v, sizeUnit)
		}
	}
	// Startup-latency trajectory: benchmarks reporting open_ms (the
	// BenchmarkOpenIndex heap-vs-mmap pair) get their own delta line.
	for _, p := range fresh.Points {
		v, ok := p.Metrics[openUnit]
		if !ok {
			continue
		}
		if old, ok := baseOpen[key{p.Name, p.Gomaxprocs}]; ok && old != 0 {
			fmt.Fprintf(os.Stderr, "  open time:  %-43s %12.3f -> %12.3f %s  %+6.1f%%\n",
				fmt.Sprintf("%s-%d", p.Name, p.Gomaxprocs), old, v, openUnit, 100*(v-old)/old)
		} else {
			fmt.Fprintf(os.Stderr, "  open time:  %-43s %27.3f %s  (no baseline)\n",
				fmt.Sprintf("%s-%d", p.Name, p.Gomaxprocs), v, openUnit)
		}
	}
}

// parseBenchOutput extracts benchmark result lines. The format is
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   1 allocs/op   2.5 custom_unit
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchOutput(r *bytes.Buffer) []Point {
	var points []Point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// go test appends "-GOMAXPROCS" to the name except when it is 1, so
		// an unsuffixed line always means GOMAXPROCS=1 — crucially under
		// -cpu sweeps, where falling back to this process's GOMAXPROCS
		// would mislabel the cpu=1 points on multicore hosts.
		procs := 1
		if i := strings.LastIndex(name, "-"); i >= 0 {
			if p, err := strconv.Atoi(name[i+1:]); err == nil {
				procs = p
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		metrics := make(map[string]float64, (len(fields)-2)/2)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		points = append(points, Point{Name: name, Gomaxprocs: procs, Iters: iters, Metrics: metrics})
	}
	return points
}
