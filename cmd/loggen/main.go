// Command loggen generates a synthetic query log (AOL-like or MSN-like
// preset) over a synthetic topic testbed and writes it as TSV — the
// format every other tool and the querylog package consume.
//
//	loggen -sessions 5000 -o log.tsv
//	loggen -preset msn -stats -o msn.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/querylog"
	"repro/internal/synth"
)

func main() {
	preset := flag.String("preset", "aol", "log preset: aol or msn")
	sessions := flag.Int("sessions", 5000, "number of sessions")
	topics := flag.Int("topics", 20, "ambiguous topics in the testbed")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "-", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print log statistics to stderr")
	flag.Parse()

	tb := synth.GenerateTestbed(synth.CorpusSpec{Seed: *seed, NumTopics: *topics})
	var spec synth.LogSpec
	switch *preset {
	case "aol":
		spec = synth.AOLLike(*seed+1, *sessions)
	case "msn":
		spec = synth.MSNLike(*seed+1, *sessions)
	default:
		fmt.Fprintf(os.Stderr, "loggen: unknown preset %q (want aol or msn)\n", *preset)
		os.Exit(2)
	}
	log := synth.GenerateLog(tb, spec)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loggen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := querylog.Write(w, log); err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
	if *stats {
		st := log.ComputeStats()
		fmt.Fprintf(os.Stderr, "queries=%d distinct=%d users=%d span=%s clicked=%d\n",
			st.Queries, st.DistinctQuery, st.Users, st.Span, st.ClickedQueries)
	}
}
