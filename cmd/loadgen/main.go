// Command loadgen is the load-generation client of the serving benchmark:
// it fetches the server's known queries (/queries, popularity-ordered),
// replays a Zipf-skewed sample of them — the head-heavy traffic shape of
// real query logs (Appendix B) — through concurrent connections, and
// reports client-observed throughput and latency percentiles together
// with the server's cache and worker-pool counters.
//
// With -ingest N it additionally drives the live-index mutation
// endpoints from one background writer while the search workers run:
// ingests (some of them updates), deletes of previously ingested
// documents, and periodic flushes and compactions — the end-to-end check
// that searches keep succeeding across epoch swaps.
//
// Failed requests are tallied by error class — connection refused,
// connection errors, client-side timeouts, 503 sheds, other 5xx/4xx,
// body decode failures — so a failover experiment can tell "the router
// shed load" apart from "the router was down". With -fail-on-error the
// exit status is nonzero if ANY search request failed, which is what
// the CI failover gate runs: kill a replica mid-run, require zero
// failed requests.
//
// Tail-tolerance probes: -budget stamps every request with an
// X-Search-Budget deadline header, and hedged / degraded responses are
// counted as their own result classes. Degraded responses (partial
// candidate set) count as failures — and trip -fail-on-error — unless
// -allow-degraded says the run expects them.
//
//	loadgen                                  # 2000 queries, 8 connections
//	loadgen -n 10000 -c 32 -zipf 1.2
//	loadgen -addr http://localhost:9090 -alg xquad -k 20
//	loadgen -ingest 200                      # mutate the live index mid-run
//	loadgen -fail-on-error                   # exit 1 unless every request succeeded
//	loadgen -json point.json -name QPSScale/workers=2   # machine-readable summary
//
// -json writes the client-observed QPS and latency percentiles as one
// benchmark point; cmd/bench -merge folds such points into the committed
// BENCH_<date>.json snapshot, which is how scripts/scale.sh records its
// replica-scaling curve.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/synth"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of a running serve instance")
	n := flag.Int("n", 2000, "total queries to replay")
	c := flag.Int("c", 8, "concurrent connections")
	zipfS := flag.Float64("zipf", 1.0, "Zipf exponent over the popularity-ordered query list")
	seed := flag.Int64("seed", 1, "sampling seed")
	alg := flag.String("alg", "", "algorithm override (empty = server default)")
	k := flag.Int("k", 0, "per-request k override (0 = server default)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	budget := flag.Duration("budget", 0, "per-request X-Search-Budget deadline header sent with every search (0 = none)")
	allowDegraded := flag.Bool("allow-degraded", false, "count degraded (partial-result) responses as successes; without this they are failures and trip -fail-on-error")
	ingestN := flag.Int("ingest", 0, "live-index mutations to interleave with the search load (ingests with periodic updates, deletes, flushes and compactions; 0 = read-only run)")
	failOnError := flag.Bool("fail-on-error", false, "exit nonzero if any search request fails (the failover gate: chaos runs must lose zero requests)")
	jsonOut := flag.String("json", "", "also write the run summary to this file as one benchmark point (the shape cmd/bench -merge folds into a BENCH_<date>.json snapshot)")
	pointName := flag.String("name", "Loadgen", "point name recorded with -json (scripts/scale.sh uses QPSScale/workers=N)")
	flag.Parse()

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *c,
			MaxIdleConnsPerHost: *c,
		},
	}

	queries, err := fetchQueries(client, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: server returned no queries")
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "replaying %d queries over %d known (zipf s=%.2f, %d connections)\n",
		*n, len(queries), *zipfS, *c)

	// Pre-sample the whole workload so the generators add no latency noise.
	zipf := synth.NewZipf(len(queries), *zipfS)
	rng := rand.New(rand.NewSource(*seed))
	work := make([]string, *n)
	for i := range work {
		work[i] = queries[zipf.Sample(rng)]
	}

	type result struct {
		latency  time.Duration
		hit      bool
		diverse  bool
		degraded bool
		hedged   bool
		class    string // empty = success; otherwise the error class
	}
	jobs := make(chan string)
	results := make(chan result, *n)
	for w := 0; w < *c; w++ {
		go func() {
			for q := range jobs {
				v := url.Values{"q": {q}}
				if *alg != "" {
					v.Set("alg", *alg)
				}
				if *k > 0 {
					v.Set("k", fmt.Sprint(*k))
				}
				began := time.Now()
				var sr server.SearchResponse
				code, hdr, err := getJSONBudget(client, *addr+"/search?"+v.Encode(), *budget, &sr)
				results <- result{
					latency:  time.Since(began),
					hit:      sr.CacheHit,
					diverse:  sr.Ambiguous,
					degraded: sr.Degraded,
					hedged:   hdr.Get(server.HeaderHedged) == "true",
					class:    classify(code, err),
				}
			}
		}()
	}

	wallStart := time.Now()
	go func() {
		for _, q := range work {
			jobs <- q
		}
		close(jobs)
	}()

	// The mutation writer runs beside the search workers: a deterministic
	// mix of ingests (every 4th one an update of an earlier doc), deletes
	// (every 7th op), and a flush/compact every 25th — so the search load
	// above crosses memtable growth, segment seals, and epoch swaps.
	mutDone := make(chan [2]int, 1)
	if *ingestN > 0 {
		go func() {
			mrng := rand.New(rand.NewSource(*seed + 42))
			ok, failed := 0, 0
			post := func(path string, body any) bool {
				var buf bytes.Buffer
				if body != nil {
					json.NewEncoder(&buf).Encode(body)
				}
				resp, err := client.Post(*addr+path, "application/json", &buf)
				if err != nil {
					return false
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				return resp.StatusCode == http.StatusOK
			}
			for i := 0; i < *ingestN; i++ {
				var succeeded bool
				switch {
				case i%25 == 24 && i%2 == 0:
					succeeded = post("/flush", nil)
				case i%25 == 24:
					succeeded = post("/compact", nil)
				case i%7 == 6 && i > 0:
					id := fmt.Sprintf("loadgen-%d", mrng.Intn(i))
					succeeded = post("/delete", map[string]string{"id": id})
				default:
					id := fmt.Sprintf("loadgen-%d", i)
					if i%4 == 3 && i > 4 {
						id = fmt.Sprintf("loadgen-%d", mrng.Intn(i)) // update
					}
					succeeded = post("/ingest", map[string]string{
						"id":    id,
						"title": fmt.Sprintf("live document %d", i),
						"body":  synth.NoiseQuery(i) + " streamed content revision",
					})
				}
				if succeeded {
					ok++
				} else {
					failed++
				}
			}
			mutDone <- [2]int{ok, failed}
		}()
	} else {
		mutDone <- [2]int{}
	}

	latencies := make([]time.Duration, 0, *n)
	okCount, hitCount, diverseCount := 0, 0, 0
	degradedCount, hedgedCount := 0, 0
	errClasses := map[string]int{}
	for i := 0; i < *n; i++ {
		r := <-results
		if r.class != "" {
			errClasses[r.class]++
			continue
		}
		if r.hedged {
			hedgedCount++ // latency salvage, not an error: always a success
		}
		if r.degraded {
			degradedCount++
			if !*allowDegraded {
				// A partial SERP the run did not opt into is a failure
				// (and trips -fail-on-error), even though it came back 200.
				errClasses["degraded"]++
				continue
			}
		}
		okCount++
		latencies = append(latencies, r.latency)
		if r.hit {
			hitCount++
		}
		if r.diverse {
			diverseCount++
		}
	}
	mut := <-mutDone
	wall := time.Since(wallStart)

	if okCount == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: every request failed; is serve running at", *addr, "?")
		os.Exit(1)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })

	fmt.Printf("requests      %d ok, %d failed\n", okCount, *n-okCount)
	if len(errClasses) > 0 {
		classes := make([]string, 0, len(errClasses))
		for cl := range errClasses {
			classes = append(classes, cl)
		}
		sort.Strings(classes)
		fmt.Printf("errors       ")
		for _, cl := range classes {
			fmt.Printf(" %s=%d", cl, errClasses[cl])
		}
		fmt.Println()
	}
	fmt.Printf("wall clock    %v\n", wall.Round(time.Millisecond))
	fmt.Printf("throughput    %.1f qps\n", float64(okCount)/wall.Seconds())
	fmt.Printf("latency p50   %v\n", percentile(latencies, 0.50).Round(time.Microsecond))
	fmt.Printf("latency p90   %v\n", percentile(latencies, 0.90).Round(time.Microsecond))
	fmt.Printf("latency p95   %v\n", percentile(latencies, 0.95).Round(time.Microsecond))
	fmt.Printf("latency p99   %v\n", percentile(latencies, 0.99).Round(time.Microsecond))
	fmt.Printf("latency max   %v\n", latencies[len(latencies)-1].Round(time.Microsecond))
	fmt.Printf("cache hits    %d/%d (%.1f%% client-observed)\n", hitCount, okCount, 100*float64(hitCount)/float64(okCount))
	fmt.Printf("diversified   %d/%d ambiguous SERPs\n", diverseCount, okCount)
	if hedgedCount > 0 || degradedCount > 0 || *budget > 0 {
		fmt.Printf("hedged        %d responses\n", hedgedCount)
		fmt.Printf("degraded      %d responses (allowed=%v)\n", degradedCount, *allowDegraded)
	}
	if *ingestN > 0 {
		fmt.Printf("mutations     %d ok, %d failed\n", mut[0], mut[1])
	}

	var st server.StatsResponse
	if code, err := getJSON(client, *addr+"/stats", &st); err == nil && code == http.StatusOK {
		fmt.Printf("server        %d searches, %d rejected, avg %.2fms in-worker\n",
			st.Searches, st.Rejected, st.AvgLatencyMsec)
		fmt.Printf("server cache  %.1f%% hit rate (%d hits / %d misses, %d evictions, %d/%d entries)\n",
			100*st.Cache.HitRate, st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.Cache.Entries, st.Cache.Capacity)
		fmt.Printf("server live   epoch %d, %d segments, %d mem docs, %d tombstones, %d live docs (%d flushes, %d compactions)\n",
			st.Live.Epoch, st.Live.Segments, st.Live.MemDocs, st.Live.Tombstones, st.Live.LiveDocs, st.Live.Flushes, st.Live.Compactions)
	}

	if *jsonOut != "" {
		// One point in the shape cmd/bench snapshots use, so a scaling
		// experiment (scripts/scale.sh) can fold client-observed QPS and
		// tail latency into the committed BENCH_<date>.json next to the
		// go-test benchmarks.
		point := struct {
			Name       string             `json:"name"`
			Gomaxprocs int                `json:"gomaxprocs"`
			Iters      int64              `json:"iters"`
			Metrics    map[string]float64 `json:"metrics"`
		}{
			Name:       *pointName,
			Gomaxprocs: runtime.GOMAXPROCS(0),
			Iters:      int64(okCount),
			Metrics: map[string]float64{
				"qps":      float64(okCount) / wall.Seconds(),
				"p50_ms":   float64(percentile(latencies, 0.50).Microseconds()) / 1e3,
				"p90_ms":   float64(percentile(latencies, 0.90).Microseconds()) / 1e3,
				"p95_ms":   float64(percentile(latencies, 0.95).Microseconds()) / 1e3,
				"p99_ms":   float64(percentile(latencies, 0.99).Microseconds()) / 1e3,
				"max_ms":   float64(latencies[len(latencies)-1].Microseconds()) / 1e3,
				"failed":   float64(*n - okCount),
				"hedged":   float64(hedgedCount),
				"degraded": float64(degradedCount),
			},
		}
		buf, err := json.MarshalIndent(point, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}

	if *failOnError && okCount < *n {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d of %d requests failed\n", *n-okCount, *n)
		os.Exit(1)
	}
}

// classify buckets a request outcome into an error class; the empty
// string means success. Transport failures are split by cause so a
// failover run can distinguish a dead endpoint (conn_refused), a
// black-holed one (timeout), and torn connections (conn); HTTP
// failures by status family, with 503 separated out because the server
// uses it for deliberate shedding.
func classify(code int, err error) string {
	switch {
	case err == nil && code == http.StatusOK:
		return ""
	case err != nil && code != 0:
		// The status line arrived but the body did not decode.
		return "decode"
	case err != nil:
		var ne net.Error
		switch {
		case errors.Is(err, syscall.ECONNREFUSED):
			return "conn_refused"
		case errors.As(err, &ne) && ne.Timeout():
			return "timeout"
		default:
			return "conn"
		}
	case code == http.StatusServiceUnavailable:
		return "http_503_shed"
	case code >= 500:
		return "http_5xx"
	case code >= 400:
		return "http_4xx"
	default:
		return fmt.Sprintf("http_%d", code)
	}
}

func fetchQueries(client *http.Client, addr string) ([]string, error) {
	var qr server.QueriesResponse
	code, err := getJSON(client, addr+"/queries", &qr)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("GET /queries: status %d", code)
	}
	return qr.Queries, nil
}

func getJSON(client *http.Client, url string, out any) (int, error) {
	code, _, err := getJSONBudget(client, url, 0, out)
	return code, err
}

// getJSONBudget is getJSON with an optional X-Search-Budget deadline
// header (0 sends none). It also returns the response headers: hedging
// is reported out-of-band via X-Hedged so response bodies stay
// byte-identical to a single-process server's.
func getJSONBudget(client *http.Client, url string, budget time.Duration, out any) (int, http.Header, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	if budget > 0 {
		req.Header.Set(server.HeaderSearchBudget, budget.String())
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(out)
	// Drain to EOF so the keep-alive connection returns to the idle pool;
	// closing a non-empty body tears the connection down and would make
	// every benchmarked request pay TCP setup.
	io.Copy(io.Discard, resp.Body)
	if err != nil {
		return resp.StatusCode, resp.Header, err
	}
	return resp.StatusCode, resp.Header, nil
}

// percentile returns the q-quantile by nearest-rank on a sorted slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
