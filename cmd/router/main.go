// Command router is the front end of the distributed serving tier: it
// scatter-gathers the document scoring phase over replicated shard
// workers (cmd/serve -worker) and runs everything else — Algorithm 1,
// the recommender, utilities, selection, the artifact cache — locally.
// Because workers compute the very same score bits the in-process
// fan-out would and the k-way merge is deterministic, a router /search
// response is byte-identical to a single-process serve (the router
// package's differential tests enforce this).
//
//	router -shard 'http://127.0.0.1:9101,http://127.0.0.1:9102' \
//	       -shard 'http://127.0.0.1:9103,http://127.0.0.1:9104@2'
//
// Each -shard flag declares one shard's replica pool, in shard order;
// 'url@weight' biases the weighted round-robin (default weight 1). The
// workers must be started with -shards N where N is the number of
// -shard flags, and with the same world flags (-seed, -topics, ...) as
// the router — probes reject workers whose shard count disagrees.
//
// Fault tolerance: replicas are health-checked every -probe-interval
// and circuit-broken after -fail-threshold consecutive failures, with
// an exponentially growing re-admission cooldown (-cooldown up to
// -cooldown-max, decorrelated across a fleet by -cooldown-jitter). Each
// scatter attempt is bounded by -attempt-timeout and fails over to the
// next healthy replica; a request fails only when some shard has no
// reachable replica left — unless -partial is set, in which case the
// surviving shards are merged and the response marked degraded.
//
// Tail tolerance: -hedge-after races a slow attempt against a second
// replica (first success wins, the loser is canceled without breaker
// penalty), refined online by the pool's -hedge-quantile latency once
// warm. Extra attempts — hedges and failover retries — draw from a
// global token bucket (-extra-ratio, -extra-burst) so a brownout cannot
// amplify into a retry storm. -budget gives every /search a default
// end-to-end deadline (per-request X-Search-Budget overrides); the
// scatter stage gets -scatter-fraction of whatever remains and workers
// see their slice via X-Budget-Ms.
//
// Endpoints are the same as cmd/serve, with /readyz additionally
// gating on every shard having a healthy replica and /stats growing a
// per-replica breaker table.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/synth"
)

// shardFlag accumulates repeated -shard values into the topology.
type shardFlag [][]router.ReplicaSpec

func (f *shardFlag) String() string {
	var b strings.Builder
	for i, pool := range *f {
		if i > 0 {
			b.WriteString("; ")
		}
		for j, r := range pool {
			if j > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%s@%d", r.URL, r.Weight)
		}
	}
	return b.String()
}

func (f *shardFlag) Set(v string) error {
	var pool []router.ReplicaSpec
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		url, weightStr, weighted := strings.Cut(part, "@")
		weight := 1
		if weighted {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return fmt.Errorf("bad replica weight in %q", part)
			}
			weight = w
		}
		pool = append(pool, router.ReplicaSpec{URL: strings.TrimSuffix(url, "/"), Weight: weight})
	}
	if len(pool) == 0 {
		return fmt.Errorf("empty replica pool %q", v)
	}
	*f = append(*f, pool)
	return nil
}

func main() {
	var shards shardFlag
	flag.Var(&shards, "shard", "one shard's replica pool: 'url[,url...]' with optional '@weight'; repeat per shard, in shard order")
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "testbed + log seed; MUST match the workers' world")
	topics := flag.Int("topics", 12, "ambiguous topics; MUST match the workers' world")
	sessions := flag.Int("sessions", 6000, "training query-log sessions")
	candidates := flag.Int("candidates", 500, "|R_q|, candidates retrieved per query")
	perSpec := flag.Int("perspec", 20, "|R_q'|, stored results per specialization")
	k := flag.Int("k", 10, "default diversified SERP size")
	threshold := flag.Float64("threshold", 0.30, "utility threshold c")
	workers := flag.Int("workers", 8, "max concurrent diversifications")
	queueTimeout := flag.Duration("queue-timeout", 5*time.Second, "max wait for a worker slot")
	cacheCap := flag.Int("cache", 1024, "query-artifact cache capacity (entries)")
	cacheShards := flag.Int("cache-shards", 16, "cache shard count")
	alg := flag.String("alg", string(core.AlgOptSelect), "default algorithm (baseline|optselect|xquad|iaselect|mmr)")
	maxK := flag.Int("maxk", 100, "cap on per-request k")
	attemptTimeout := flag.Duration("attempt-timeout", 2*time.Second, "per-replica scatter attempt timeout before failing over")
	maxAttempts := flag.Int("max-attempts", 0, "max replicas tried per shard per request (0 = pool size)")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures that open a replica's circuit breaker")
	cooldown := flag.Duration("cooldown", 500*time.Millisecond, "first breaker cooldown; doubles per consecutive open cycle")
	cooldownMax := flag.Duration("cooldown-max", 30*time.Second, "breaker cooldown cap")
	cooldownJitter := flag.Float64("cooldown-jitter", 0.2, "random extra cooldown fraction added after capping, decorrelating fleet re-probes (0 = deterministic schedule)")
	jitterSeed := flag.Int64("jitter-seed", 0, "cooldown-jitter RNG seed (0 = from the clock)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge a shard attempt outliving this at a second replica, first success wins (0 = hedging off)")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.95, "once warmed up, hedge at this online per-shard latency quantile instead of the fixed -hedge-after (0 = always fixed)")
	extraRatio := flag.Float64("extra-ratio", 0.2, "retry/hedge token budget earned per primary attempt")
	extraBurst := flag.Float64("extra-burst", 10, "retry/hedge token budget capacity (exhausted = single-attempt behavior)")
	scatterFraction := flag.Float64("scatter-fraction", 0.65, "fraction of the remaining request budget given to the scatter stage (>= 1 disables sub-budgeting)")
	partial := flag.Bool("partial", false, "on whole-shard outage or spent sub-budget, merge surviving shards and answer degraded:true instead of 503")
	budget := flag.Duration("budget", 0, "default end-to-end /search budget (0 = none; per-request X-Search-Budget overrides)")
	probeInterval := flag.Duration("probe-interval", time.Second, "health-check period per replica")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "health-check request timeout")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout (0 = unlimited)")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout (0 = unlimited)")
	flag.Parse()

	defaultAlg := core.Algorithm(*alg)
	if !defaultAlg.Valid() {
		fmt.Fprintf(os.Stderr, "router: unknown -alg %q (valid: %v)\n", *alg, core.Algorithms)
		os.Exit(2)
	}
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "router: at least one -shard pool is required")
		os.Exit(2)
	}

	searcher, err := router.NewSearcher(router.Config{
		Shards:          shards,
		AttemptTimeout:  *attemptTimeout,
		MaxAttempts:     *maxAttempts,
		HedgeAfter:      *hedgeAfter,
		HedgeQuantile:   *hedgeQuantile,
		ExtraRatio:      *extraRatio,
		ExtraBurst:      *extraBurst,
		AllowPartial:    *partial,
		ScatterFraction: *scatterFraction,
		FailThreshold:   *failThreshold,
		CooldownBase:    *cooldown,
		CooldownMax:     *cooldownMax,
		CooldownJitter:  *cooldownJitter,
		JitterSeed:      *jitterSeed,
		ProbeInterval:   *probeInterval,
		ProbeTimeout:    *probeTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(2)
	}
	searcher.Start()
	defer searcher.Close()

	// Listener up first: probes, /healthz and a 503 /readyz work while
	// the local pipeline builds.
	inner := server.New(nil, server.Config{
		Workers:       *workers,
		QueueTimeout:  *queueTimeout,
		DefaultAlg:    defaultAlg,
		MaxK:          *maxK,
		DefaultBudget: *budget,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           router.NewRouter(inner, searcher).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "router listening on %s over %d shards (not ready: building pipeline)\n", *addr, len(shards))

	// The router's own pipeline carries the query-understanding half —
	// lexicon, query-flow graph, recommender — built from the same seeds
	// as the workers' world. Its local index never scores a query (the
	// Searcher override sends retrieval to the workers); it exists so
	// surrogate vectors and cache epochs come from the identical world.
	fmt.Fprintf(os.Stderr, "building pipeline (seed %d, %d topics, %d sessions)...\n", *seed, *topics, *sessions)
	began := time.Now()
	pipe, err := repro.Build(repro.Config{
		Corpus:        synth.CorpusSpec{Seed: *seed, NumTopics: *topics},
		Log:           synth.AOLLike(*seed+1, *sessions),
		Engine:        engine.Config{Shards: len(shards)},
		NumCandidates: *candidates,
		PerSpec:       *perSpec,
		K:             *k,
		Threshold:     *threshold,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(1)
	}
	pipe.Searcher = searcher
	inner.Publish(pipe.NewServeHandle(*cacheCap, *cacheShards))
	fmt.Fprintf(os.Stderr, "pipeline ready in %v; serving when every shard has a healthy replica (see /readyz)\n",
		time.Since(began).Round(time.Millisecond))

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(1)
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "router: shutdown:", err)
			os.Exit(1)
		}
	}
}
