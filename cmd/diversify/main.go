// Command diversify is the end-user face of the system: it assembles the
// full pipeline (corpus, index, query log, recommender) and answers
// queries from the command line, printing the mined specializations and
// the diversified SERP next to the plain ranking.
//
//	diversify -alg optselect topic01 topic02
//	diversify -alg xquad -k 10 "noise query 0001"
//
// With no query arguments it reads one query per line from stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	algName := flag.String("alg", "optselect", "algorithm: optselect, xquad, iaselect, mmr, baseline")
	k := flag.Int("k", 10, "diversified SERP size")
	topics := flag.Int("topics", 10, "synthetic testbed topics")
	sessions := flag.Int("sessions", 6000, "query-log sessions to mine")
	seed := flag.Int64("seed", 7, "generator seed")
	threshold := flag.Float64("c", 0.3, "utility threshold c")
	lambda := flag.Float64("lambda", 0.15, "relevance/diversity mix λ")
	flag.Parse()

	alg := core.Algorithm(*algName)
	valid := false
	for _, a := range core.Algorithms {
		if a == alg {
			valid = true
		}
	}
	if !valid {
		fmt.Fprintf(os.Stderr, "diversify: unknown algorithm %q\n", *algName)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "building pipeline (%d topics, %d sessions)...\n", *topics, *sessions)
	pipe, err := repro.Build(repro.Config{
		Corpus:    synth.CorpusSpec{Seed: *seed, NumTopics: *topics},
		Log:       synth.AOLLike(*seed+1, *sessions),
		K:         *k,
		Lambda:    *lambda,
		Threshold: *threshold,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "diversify:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ready: %d documents indexed, %d log records mined\n\n",
		pipe.Engine.NumDocs(), pipe.Log.Len())

	queries := flag.Args()
	if len(queries) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if q := sc.Text(); q != "" {
				answer(pipe, alg, q)
			}
		}
		return
	}
	for _, q := range queries {
		answer(pipe, alg, q)
	}
}

func answer(pipe *repro.Pipeline, alg core.Algorithm, query string) {
	specs := pipe.DetectSpecializations(query)
	problem := pipe.BuildProblem(query, specs)
	baseline := core.Baseline(problem)

	fmt.Printf("query: %q\n", query)
	if len(specs) == 0 {
		fmt.Println("  unambiguous — serving the plain ranking")
		for _, s := range baseline {
			fmt.Printf("  %2d. %s\n", s.Rank, s.ID)
		}
		fmt.Println()
		return
	}
	fmt.Printf("  ambiguous — %d specializations mined:\n", len(specs))
	for _, s := range specs {
		fmt.Printf("    P=%.3f %q\n", s.Prob, s.Query)
	}
	diversified := core.Diversify(alg, problem)
	fmt.Printf("  %-4s %-24s | %s (%s)\n", "rank", "plain", "diversified", alg)
	for i := 0; i < len(diversified); i++ {
		plain := "-"
		if i < len(baseline) {
			plain = baseline[i].ID
		}
		fmt.Printf("  %-4d %-24s | %s\n", i+1, plain, diversified[i].ID)
	}
	fmt.Println()
}
