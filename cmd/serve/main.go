// Command serve runs the concurrent diversification service. It builds
// the full pipeline once at startup (synthetic testbed, inverted index,
// query log, query-flow graph, recommender) and then answers queries over
// HTTP through a bounded worker pool and a sharded LRU cache of per-query
// diversification artifacts — the serving architecture the paper's §6
// outlook sketches. Pair it with loadgen for an end-to-end benchmark.
//
//	serve                                   # defaults: :8080, 8 workers, 1 shard
//	serve -addr :9090 -workers 16 -cache 4096
//	serve -shards 4                         # retrieval fans out over 4 index segments
//	serve -no-prune                         # exhaustive retrieval (MaxScore pruning off)
//	serve -block-size 256                   # tune the compressed posting-block capacity
//	serve -no-compress                      # flat []Posting layout (no block compression)
//	serve -topics 20 -sessions 8000 -alg xquad -k 20
//	serve -wal-dir /var/lib/repro           # durable epochs; restart recovers them
//	serve -memtable 512 -merge-every 30s    # live-index tuning
//	serve -pprof                            # expose /debug/pprof/ too
//
// Endpoints: /search?q=…&k=…&alg=…, /healthz, /stats (includes
// per-endpoint latency histograms), /queries, plus the live-index
// mutations POST /ingest, /delete, /flush, /compact; with -pprof also the
// net/http/pprof suite under /debug/pprof/ for in-situ profiling of the
// serving path (CPU: /debug/pprof/profile, heap: /debug/pprof/heap).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "testbed + log seed (deterministic world)")
	topics := flag.Int("topics", 12, "ambiguous topics in the synthetic testbed")
	sessions := flag.Int("sessions", 6000, "training query-log sessions")
	candidates := flag.Int("candidates", 500, "|R_q|, candidates retrieved per query")
	perSpec := flag.Int("perspec", 20, "|R_q'|, stored results per specialization")
	k := flag.Int("k", 10, "default diversified SERP size")
	threshold := flag.Float64("threshold", 0.30, "utility threshold c")
	workers := flag.Int("workers", 8, "max concurrent diversifications")
	queueTimeout := flag.Duration("queue-timeout", 5*time.Second, "max wait for a worker slot")
	cacheCap := flag.Int("cache", 1024, "query-artifact cache capacity (entries)")
	cacheShards := flag.Int("cache-shards", 16, "cache shard count")
	shards := flag.Int("shards", 1, "index segments; every retrieval fans out over this many shards in parallel (results are identical at any count)")
	noPrune := flag.Bool("no-prune", false, "disable MaxScore dynamic pruning and retrieve exhaustively (results are identical either way; pruning is just faster)")
	blockSize := flag.Int("block-size", 0, "postings per compressed block (0 = default 128; results are identical at any size)")
	noCompress := flag.Bool("no-compress", false, "store postings as flat structs instead of compressed blocks (~3-4x the memory, no block skipping; results are identical)")
	alg := flag.String("alg", string(core.AlgOptSelect), "default algorithm (baseline|optselect|xquad|iaselect|mmr)")
	maxK := flag.Int("maxk", 100, "cap on per-request k")
	walDir := flag.String("wal-dir", "", "directory for durable epoch files; flushes/compactions persist there and a restart recovers the newest epoch (empty = in-memory only)")
	memtableCap := flag.Int("memtable", 0, "live-index write-buffer capacity before auto-flush (0 = default 1024, negative = never auto-flush)")
	mergeEvery := flag.Duration("merge-every", time.Minute, "background compaction interval for the live index (0 = never; compaction folds segments and tombstones back into one base segment)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (do not enable on untrusted networks)")
	flag.Parse()

	defaultAlg := core.Algorithm(*alg)
	if !defaultAlg.Valid() {
		fmt.Fprintf(os.Stderr, "serve: unknown -alg %q (valid: %v)\n", *alg, core.Algorithms)
		os.Exit(2)
	}

	cfg := repro.Config{
		Corpus: synth.CorpusSpec{Seed: *seed, NumTopics: *topics},
		Log:    synth.AOLLike(*seed+1, *sessions),
		Engine: engine.Config{
			Shards:             *shards,
			DisablePruning:     *noPrune,
			BlockSize:          *blockSize,
			DisableCompression: *noCompress,
			MemtableCap:        *memtableCap,
			WALDir:             *walDir,
		},
		NumCandidates: *candidates,
		PerSpec:       *perSpec,
		K:             *k,
		Threshold:     *threshold,
	}

	fmt.Fprintf(os.Stderr, "building pipeline (seed %d, %d topics, %d sessions)...\n", *seed, *topics, *sessions)
	began := time.Now()
	pipe, err := repro.Build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	pruning := "maxscore pruning"
	if !pipe.Engine.PruningEnabled() {
		pruning = "exhaustive retrieval"
	}
	storage := pipe.Engine.Index().Storage()
	layout := fmt.Sprintf("block-compressed postings, %d/block, %.2f B/posting", storage.BlockSize, storage.BytesPerPosting)
	if storage.BlockSize == 0 {
		layout = fmt.Sprintf("flat postings, %.2f B/posting", storage.BytesPerPosting)
	}
	fmt.Fprintf(os.Stderr, "pipeline ready in %v: %d docs indexed over %d shards (%s; %s), %d log records, %d sessions\n",
		time.Since(began).Round(time.Millisecond), pipe.Engine.NumDocs(),
		pipe.Engine.Segments().NumShards(), pruning, layout, pipe.Log.Len(), len(pipe.Sessions))

	srv := server.New(pipe.NewServeHandle(*cacheCap, *cacheShards), server.Config{
		Workers:      *workers,
		QueueTimeout: *queueTimeout,
		DefaultAlg:   defaultAlg,
		MaxK:         *maxK,
	})

	handler := srv.Handler()
	if *pprofOn {
		// Mount the pprof suite next to the API on an explicit mux — the
		// server package stays profiling-agnostic and the handlers exist
		// only when asked for.
		root := http.NewServeMux()
		root.Handle("/", handler)
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = root
		fmt.Fprintln(os.Stderr, "pprof enabled on /debug/pprof/")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *mergeEvery > 0 {
		// Background compaction: fold accumulated segments and tombstones
		// back into one freshly built base on a fixed cadence. Compaction
		// holds only the engine's mutation lock — searches keep running
		// against the previous snapshot until the epoch swap.
		go func() {
			tick := time.NewTicker(*mergeEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if _, err := pipe.Engine.Compact(); err != nil {
						fmt.Fprintln(os.Stderr, "serve: background compaction:", err)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving on %s (%d workers, cache %d entries / %d shards, default alg %s)\n",
		*addr, *workers, *cacheCap, *cacheShards, *alg)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
			os.Exit(1)
		}
	}
}
