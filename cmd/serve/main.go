// Command serve runs the concurrent diversification service. It builds
// the full pipeline once at startup (synthetic testbed, inverted index,
// query log, query-flow graph, recommender) and then answers queries over
// HTTP through a bounded worker pool and a sharded LRU cache of per-query
// diversification artifacts — the serving architecture the paper's §6
// outlook sketches. Pair it with loadgen for an end-to-end benchmark.
//
//	serve                                   # defaults: :8080, 8 workers, 1 shard
//	serve -addr :9090 -workers 16 -cache 4096
//	serve -shards 4                         # retrieval fans out over 4 index segments
//	serve -no-prune                         # exhaustive retrieval (MaxScore pruning off)
//	serve -block-size 256                   # tune the compressed posting-block capacity
//	serve -no-compress                      # flat []Posting layout (no block compression)
//	serve -topics 20 -sessions 8000 -alg xquad -k 20
//	serve -wal-dir /var/lib/repro           # durable epochs; restart recovers them
//	serve -memtable 512 -merge-every 30s    # live-index tuning
//	serve -fused                            # fuse retrieval+diversification into one scan (cached ambiguous queries)
//	serve -madvise=false                    # suppress madvise hints on mapped index regions
//	serve -pprof                            # expose /debug/pprof/ too
//	serve -worker -shards 2 -addr :9101     # shard worker for the distributed tier
//	serve -worker -index index.ridx7 -mmap  # worker over a persisted index, mmap-served
//	serve -index index.ridx7 -mmap          # full service over a persisted index
//
// With -index the engine comes from a persisted file (buildindex output:
// an RENG2 engine stream or an RIDX7 mapped image) instead of being
// rebuilt from the synthetic corpus; -mmap additionally serves an RIDX7
// file in place off the page cache — no posting decode at startup, which
// is what makes worker (re)starts effectively instant. The file must
// have been built over the same deterministic world (-seed/-topics) the
// rest of the pipeline generates.
//
// The listener binds before the pipeline builds: /healthz answers 200
// (liveness) immediately, /readyz answers 503 until the index is
// published, and a router or load balancer should gate traffic on
// /readyz, not /healthz.
//
// With -worker the binary becomes a shard worker of the distributed
// serving tier (see cmd/router): it builds only the deterministic
// testbed and index — no query log, no recommender — and serves
// per-shard retrieval over POST /shard/search plus /healthz and
// /readyz. Workers serve an immutable snapshot; the live-mutation
// endpoints do not exist in worker mode.
//
// Endpoints: /search?q=…&k=…&alg=…, /healthz, /readyz, /stats (includes
// per-endpoint latency histograms), /queries, plus the live-index
// mutations POST /ingest, /delete, /flush, /compact; with -pprof also the
// net/http/pprof suite under /debug/pprof/ for in-situ profiling of the
// serving path (CPU: /debug/pprof/profile, heap: /debug/pprof/heap).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "testbed + log seed (deterministic world)")
	topics := flag.Int("topics", 12, "ambiguous topics in the synthetic testbed")
	sessions := flag.Int("sessions", 6000, "training query-log sessions")
	candidates := flag.Int("candidates", 500, "|R_q|, candidates retrieved per query")
	perSpec := flag.Int("perspec", 20, "|R_q'|, stored results per specialization")
	k := flag.Int("k", 10, "default diversified SERP size")
	threshold := flag.Float64("threshold", 0.30, "utility threshold c")
	workers := flag.Int("workers", 8, "max concurrent diversifications")
	queueTimeout := flag.Duration("queue-timeout", 5*time.Second, "max wait for a worker slot")
	cacheCap := flag.Int("cache", 1024, "query-artifact cache capacity (entries)")
	cacheShards := flag.Int("cache-shards", 16, "cache shard count")
	shards := flag.Int("shards", 1, "index segments; every retrieval fans out over this many shards in parallel (results are identical at any count)")
	noPrune := flag.Bool("no-prune", false, "disable MaxScore dynamic pruning and retrieve exhaustively (results are identical either way; pruning is just faster)")
	blockSize := flag.Int("block-size", 0, "postings per compressed block (0 = default 128; results are identical at any size)")
	noCompress := flag.Bool("no-compress", false, "store postings as flat structs instead of compressed blocks (~3-4x the memory, no block skipping; results are identical)")
	alg := flag.String("alg", string(core.AlgOptSelect), "default algorithm (baseline|optselect|xquad|iaselect|mmr)")
	maxK := flag.Int("maxk", 100, "cap on per-request k")
	budget := flag.Duration("budget", 0, "default end-to-end /search budget (0 = none; per-request X-Search-Budget overrides)")
	walDir := flag.String("wal-dir", "", "directory for durable epoch files; flushes/compactions persist there and a restart recovers the newest epoch (empty = in-memory only)")
	memtableCap := flag.Int("memtable", 0, "live-index write-buffer capacity before auto-flush (0 = default 1024, negative = never auto-flush)")
	mergeEvery := flag.Duration("merge-every", time.Minute, "background compaction interval for the live index (0 = never; compaction folds segments and tombstones back into one base segment)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (do not enable on untrusted networks)")
	workerMode := flag.Bool("worker", false, "run as a shard worker of the distributed tier: build only the index and serve POST /shard/search (see cmd/router)")
	indexPath := flag.String("index", "", "persisted index/engine file to serve (buildindex output) instead of rebuilding from the synthetic corpus")
	mmapOn := flag.Bool("mmap", false, "with -index: serve an RIDX7 file in place via mmap (instant startup, page-cache-shared memory)")
	fusedOn := flag.Bool("fused", false, "answer cached ambiguous queries with the fused execution plan: one Block-Max MaxScore scan carries the per-specialization heaps, so retrieval+diversification fuse into a single pass (results are bit-identical to the staged plan)")
	madviseOn := flag.Bool("madvise", true, "issue madvise access-pattern hints for mapped index regions: MADV_RANDOM while serving, MADV_SEQUENTIAL for compaction/export scans (no-op on heap indexes and platforms without madvise)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout: max time to read a full request (0 = unlimited)")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout: max time to write a full response (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout: max keep-alive idle time per connection (0 = unlimited)")
	flag.Parse()

	defaultAlg := core.Algorithm(*alg)
	if !defaultAlg.Valid() {
		fmt.Fprintf(os.Stderr, "serve: unknown -alg %q (valid: %v)\n", *alg, core.Algorithms)
		os.Exit(2)
	}

	cfg := repro.Config{
		Corpus: synth.CorpusSpec{Seed: *seed, NumTopics: *topics},
		Log:    synth.AOLLike(*seed+1, *sessions),
		Engine: engine.Config{
			Shards:             *shards,
			DisablePruning:     *noPrune,
			BlockSize:          *blockSize,
			DisableCompression: *noCompress,
			MemtableCap:        *memtableCap,
			WALDir:             *walDir,
			Mmap:               *mmapOn,
			DisableMadvise:     !*madviseOn,
		},
		NumCandidates: *candidates,
		PerSpec:       *perSpec,
		K:             *k,
		Threshold:     *threshold,
		Fused:         *fusedOn,
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workerMode {
		runWorker(ctx, httpSrv, cfg, *indexPath)
		return
	}
	if *indexPath != "" {
		eng, err := engine.OpenIndexFile(*indexPath, cfg.Engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		cfg.PrebuiltEngine = eng
	}

	// The server starts not-ready and the listener binds immediately:
	// /healthz (liveness) answers during the build, /readyz flips to 200
	// only once the pipeline is published.
	srv := server.New(nil, server.Config{
		Workers:       *workers,
		QueueTimeout:  *queueTimeout,
		DefaultAlg:    defaultAlg,
		MaxK:          *maxK,
		DefaultBudget: *budget,
	})

	handler := srv.Handler()
	if *pprofOn {
		// Mount the pprof suite next to the API on an explicit mux — the
		// server package stays profiling-agnostic and the handlers exist
		// only when asked for.
		root := http.NewServeMux()
		root.Handle("/", handler)
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = root
		fmt.Fprintln(os.Stderr, "pprof enabled on /debug/pprof/")
	}
	httpSrv.Handler = handler

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "listening on %s (not ready: building pipeline)\n", *addr)

	fmt.Fprintf(os.Stderr, "building pipeline (seed %d, %d topics, %d sessions)...\n", *seed, *topics, *sessions)
	began := time.Now()
	pipe, err := repro.Build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	pruning := "maxscore pruning"
	if !pipe.Engine.PruningEnabled() {
		pruning = "exhaustive retrieval"
	}
	storage := pipe.Engine.Index().Storage()
	layout := fmt.Sprintf("block-compressed postings, %d/block, %.2f B/posting", storage.BlockSize, storage.BytesPerPosting)
	if storage.BlockSize == 0 {
		layout = fmt.Sprintf("flat postings, %.2f B/posting", storage.BytesPerPosting)
	}
	fmt.Fprintf(os.Stderr, "pipeline ready in %v: %d docs indexed over %d shards (%s; %s), %d log records, %d sessions\n",
		time.Since(began).Round(time.Millisecond), pipe.Engine.NumDocs(),
		pipe.Engine.Segments().NumShards(), pruning, layout, pipe.Log.Len(), len(pipe.Sessions))

	srv.Publish(pipe.NewServeHandle(*cacheCap, *cacheShards))
	fmt.Fprintf(os.Stderr, "ready on %s (%d workers, cache %d entries / %d shards, default alg %s)\n",
		*addr, *workers, *cacheCap, *cacheShards, *alg)

	if *mergeEvery > 0 {
		// Background compaction: fold accumulated segments and tombstones
		// back into one freshly built base on a fixed cadence. Compaction
		// holds only the engine's mutation lock — searches keep running
		// against the previous snapshot until the epoch swap.
		go func() {
			tick := time.NewTicker(*mergeEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if _, err := pipe.Engine.Compact(); err != nil {
						fmt.Fprintln(os.Stderr, "serve: background compaction:", err)
					}
				}
			}
		}()
	}

	waitAndShutdown(ctx, httpSrv, errc)
}

// runWorker is the -worker mode: an index-only build (no query log, no
// recommender — workers run only the document scoring phase) behind the
// distributed tier's per-shard retrieval endpoint. The listener binds
// before the build so the router's probes see a live but not-ready
// replica instead of connection refused. With indexPath the index comes
// from a persisted file instead of a fresh build — combined with -mmap
// the worker is ready as soon as the file is mapped, which is what makes
// failover respawns effectively instant.
func runWorker(ctx context.Context, httpSrv *http.Server, cfg repro.Config, indexPath string) {
	w := router.NewWorker(nil)
	httpSrv.Handler = w.Handler()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "worker listening on %s (not ready: building index)\n", httpSrv.Addr)

	began := time.Now()
	var eng *engine.Engine
	var err error
	if indexPath != "" {
		eng, err = engine.OpenIndexFile(indexPath, cfg.Engine)
	} else {
		tb := synth.GenerateTestbed(cfg.Corpus)
		eng, err = engine.Build(tb.Docs, cfg.Engine)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve: worker build:", err)
		os.Exit(1)
	}
	w.Publish(eng)
	backing := "built"
	if indexPath != "" {
		backing = "loaded"
		if eng.Index().Mapped() {
			backing = "mapped"
		}
	}
	fmt.Fprintf(os.Stderr, "worker ready in %v: %d docs over %d shards (epoch %d, %s index)\n",
		time.Since(began).Round(time.Millisecond), eng.NumDocs(), eng.Segments().NumShards(), eng.Epoch(), backing)

	waitAndShutdown(ctx, httpSrv, errc)
}

// waitAndShutdown blocks until the listener fails or a signal arrives,
// then drains gracefully.
func waitAndShutdown(ctx context.Context, httpSrv *http.Server, errc chan error) {
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
			os.Exit(1)
		}
	}
}
