// Command footprint reproduces the §4.1 feasibility analysis: it mines the
// ambiguous queries of a synthetic log, stores the R_q′ snippet surrogates
// for each specialization, and reports the measured memory footprint
// against the paper's back-of-the-envelope bound N·|S_q̂|·|R_q̂′|·L.
//
//	footprint                         # 30 topics, 8000 sessions
//	footprint -topics 50 -rq1 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/engine"
	"repro/internal/synth"
)

func main() {
	topics := flag.Int("topics", 30, "number of ambiguous topics")
	sessions := flag.Int("sessions", 8000, "query-log sessions")
	perList := flag.Int("rq1", 20, "|Rq'|: surrogates stored per specialization")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	cfg := repro.Config{
		Corpus: synth.CorpusSpec{Seed: *seed, NumTopics: *topics},
		Log:    synth.AOLLike(*seed+1, *sessions),
	}
	pipe, err := repro.Build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "footprint:", err)
		os.Exit(1)
	}

	store := engine.NewSurrogateStore()
	mined := 0
	for _, topic := range pipe.Testbed.Topics {
		specs := pipe.DetectSpecializations(topic.Query)
		if len(specs) == 0 {
			continue
		}
		mined++
		queries := make([]string, len(specs))
		for i, s := range specs {
			queries[i] = s.Query
		}
		store.PopulateFromEngine(pipe.Engine, topic.Query, queries, *perList)
	}

	st := pipe.Engine.Index().Storage()
	fmt.Println("== retrieval-tier footprint: posting storage ==")
	layout := fmt.Sprintf("block-compressed (%d postings/block, %d blocks)", st.BlockSize, st.Blocks)
	if st.BlockSize == 0 {
		layout = "flat []Posting"
	}
	fmt.Printf("posting layout:                     %s\n", layout)
	fmt.Printf("postings:                           %d\n", st.Postings)
	fmt.Printf("posting bytes:                      %d (%.2f MiB, %.2f B/posting; flat layout costs 8 B/posting)\n",
		st.Bytes, float64(st.Bytes)/(1<<20), st.BytesPerPosting)
	fmt.Println()

	// Mapped-vs-heap: size of the page-aligned RIDX7 image this engine
	// would serve in place, next to what the heap representation holds.
	// The mapped image bounds the resident set (pages fault in on
	// demand), and opening it decodes zero postings — the §4.1 estimate
	// sits beside both so the surrogate store can be budgeted against
	// either deployment.
	mappedBytes, err := pipe.Engine.WriteMappedTo(io.Discard)
	if err != nil {
		fmt.Fprintln(os.Stderr, "footprint: sizing mapped image:", err)
		os.Exit(1)
	}
	fmt.Println("== mapped-vs-heap index footprint ==")
	fmt.Printf("heap posting bytes:                 %d (%.2f MiB, decoded structures owned by the process)\n",
		st.Bytes, float64(st.Bytes)/(1<<20))
	fmt.Printf("mapped image bytes (RIDX7):         %d (%.2f MiB: postings + dictionary + doc store + score tables, page-aligned, served in place)\n",
		mappedBytes, float64(mappedBytes)/(1<<20))
	fmt.Println()

	f := store.ComputeFootprint()
	fmt.Println("== §4.1 feasibility: surrogate-store footprint ==")
	fmt.Printf("ambiguous queries mined (N):        %d (of %d topics)\n", f.AmbiguousQueries, len(pipe.Testbed.Topics))
	fmt.Printf("max specializations (|S_q̂|):        %d\n", f.MaxSpecs)
	fmt.Printf("max surrogates per list (|R_q̂'|):   %d\n", f.MaxListLen)
	fmt.Printf("mean surrogate bytes (L):           %d\n", f.AvgSurrogateBytes)
	fmt.Printf("measured snippet bytes:             %d (%.2f MiB)\n", f.ActualBytes, float64(f.ActualBytes)/(1<<20))
	fmt.Printf("paper bound N*|S_q̂|*|R_q̂'|*L:       %d (%.2f MiB)\n", f.BoundBytes, float64(f.BoundBytes)/(1<<20))
	if f.BoundBytes >= f.ActualBytes {
		fmt.Println("bound holds: measured usage <= paper's estimate")
	} else {
		fmt.Println("WARNING: measured usage exceeds the paper's bound")
	}
	_ = mined
}
