// Command trecdiv regenerates the paper's Table 3: α-NDCG and IA-P at
// cutoffs {5,10,20,100,1000} for the DPH baseline and for OptSelect,
// xQuAD and IASelect across the utility-threshold sweep, on the synthetic
// TREC-2009-Diversity-style testbed, with the Wilcoxon significance check
// of §5.
//
//	trecdiv -topics 10 -rq 2000 -k 100    # laptop-scale run
//	trecdiv                               # the paper's full grid (slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/synth"
)

func main() {
	topics := flag.Int("topics", 50, "number of diversity topics")
	docsPerSub := flag.Int("docs-per-subtopic", 40, "relevant docs per sub-topic")
	noise := flag.Int("noise", 2000, "background noise documents")
	sessions := flag.Int("sessions", 20000, "training query-log sessions")
	seed := flag.Int64("seed", 1, "generator seed")
	k := flag.Int("k", 1000, "diversified result size (paper: 1000)")
	candidates := flag.Int("rq", 25000, "|Rq| to retrieve (paper: 25000)")
	flag.Parse()

	spec := exp.DefaultTable3Spec()
	spec.Pipeline.Corpus = synth.CorpusSpec{
		Seed:            *seed,
		NumTopics:       *topics,
		DocsPerSubtopic: *docsPerSub,
		NoiseDocs:       *noise,
	}
	spec.Pipeline.Log = synth.AOLLike(*seed+1, *sessions)
	spec.Pipeline.K = *k
	spec.Pipeline.NumCandidates = *candidates

	fmt.Println("== Table 3: effectiveness on the diversity testbed ==")
	fmt.Printf("(topics=%d, docs/subtopic=%d, noise=%d, sessions=%d, k=%d, lambda=%.2f)\n\n",
		*topics, *docsPerSub, *noise, *sessions, *k, spec.Pipeline.Lambda)

	res, err := exp.RunTable3(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trecdiv:", err)
		os.Exit(1)
	}
	if err := res.Format(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trecdiv:", err)
		os.Exit(1)
	}

	// The paper's §5 comparison: OptSelect (best c) vs xQuAD (best c),
	// Wilcoxon signed-rank on per-topic α-NDCG@20.
	cOpt, _ := res.BestRow(core.AlgOptSelect, 20)
	cXq, _ := res.BestRow(core.AlgXQuAD, 20)
	w, err := res.Significance(core.AlgOptSelect, cOpt, core.AlgXQuAD, cXq, "alpha-ndcg", 20)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trecdiv: significance:", err)
		os.Exit(1)
	}
	verdict := "NOT significant (as in the paper)"
	if w.P < 0.05 {
		verdict = "significant"
	}
	fmt.Printf("\nWilcoxon OptSelect(c=%.2f) vs xQuAD(c=%.2f) on alpha-NDCG@20: W=%.1f p=%.3f -> %s\n",
		cOpt, cXq, w.W, w.P, verdict)
}
