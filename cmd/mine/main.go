// Command mine runs the §3.1 query-log mining pipeline over a TSV log
// (as produced by loggen): query-flow-graph session splitting, recommender
// training, and Algorithm 1 ambiguity detection. It prints, for each
// detected ambiguous query, its specializations with the Definition 1
// probabilities — the exact knowledge base the diversifier consumes.
//
//	loggen -o log.tsv && mine -i log.tsv
//	mine -i log.tsv -s 5 -max 20
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/qfg"
	"repro/internal/querylog"
	"repro/internal/suggest"
)

func main() {
	in := flag.String("i", "-", "input TSV log (default stdin)")
	s := flag.Float64("s", 10, "Algorithm 1 popularity divisor s")
	minFreq := flag.Int("min-freq", 3, "only report queries with f(q) >= this")
	max := flag.Int("max", 50, "max ambiguous queries to print")
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mine:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	log, err := querylog.Read(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mine:", err)
		os.Exit(1)
	}

	sessions := qfg.ExtractSessions(log, qfg.Options{})
	sessionStats := qfg.ComputeSessionStats(sessions)
	fmt.Printf("# log: %d records; %d logical sessions (mean length %.2f, %d satisfactory)\n",
		log.Len(), sessionStats.Sessions, sessionStats.MeanLength, sessionStats.Satisfactory)

	freq := log.Frequencies()
	rec := suggest.Train(sessions, freq, suggest.TrainOptions{})
	opts := suggest.DefaultDetectOptions()
	opts.S = *s

	// Scan distinct queries by descending popularity.
	type qf struct {
		q string
		f int
	}
	var queries []qf
	for q, f := range freq {
		if f >= *minFreq {
			queries = append(queries, qf{q, f})
		}
	}
	sort.Slice(queries, func(i, j int) bool {
		if queries[i].f != queries[j].f {
			return queries[i].f > queries[j].f
		}
		return queries[i].q < queries[j].q
	})

	printed := 0
	for _, e := range queries {
		if printed >= *max {
			break
		}
		specs := suggest.AmbiguousQueryDetect(e.q, rec, opts)
		if len(specs) == 0 {
			continue
		}
		printed++
		fmt.Printf("\n%q  f=%d  |Sq|=%d\n", e.q, e.f, len(specs))
		for _, sp := range specs {
			fmt.Printf("    %-50q P=%.3f f=%d\n", sp.Query, sp.Prob, sp.Freq)
		}
	}
	if printed == 0 {
		fmt.Println("# no ambiguous queries detected (try lowering -min-freq or raising -s)")
	}
}
