// Command efficiency regenerates the paper's Table 2 (diversification
// wall-clock times over the |R_q| × k grid) and, with -fit, the empirical
// complexity exponents behind Table 1.
//
// Usage:
//
//	efficiency            # reduced grid (fast)
//	efficiency -full      # the paper's grid: |Rq| ∈ {1k,10k,100k} × k ∈ {10..1000}
//	efficiency -fit       # add the Table 1 power-law fits
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full grid (slower)")
	fit := flag.Bool("fit", false, "fit complexity exponents (Table 1)")
	seed := flag.Int64("seed", 1, "problem generator seed")
	reps := flag.Int("reps", 3, "timing repetitions per cell")
	specs := flag.Int("specs", 8, "|Sq|: specializations per problem")
	flag.Parse()

	spec := exp.Table2Spec{Seed: *seed, Reps: *reps, NumSpecs: *specs}
	if *full {
		spec.Ns = []int{1000, 10000, 100000}
		spec.Ks = []int{10, 50, 100, 500, 1000}
	} else {
		spec.Ns = []int{1000, 10000, 40000}
		spec.Ks = []int{10, 50, 100, 500, 1000}
	}

	fmt.Println("== Table 2: diversification time (msec) ==")
	res := exp.RunTable2(spec)
	if err := res.Format(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "efficiency:", err)
		os.Exit(1)
	}

	if *fit {
		fmt.Println("\n== Table 1: empirical complexity fits ==")
		fits, err := exp.FitComplexity(res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "efficiency:", err)
			os.Exit(1)
		}
		exp.FormatComplexity(os.Stdout, fits)
	}
}
