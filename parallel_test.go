package repro

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

func TestBuildProblemParallelMatchesSequential(t *testing.T) {
	p := buildTiny(t)
	specs := p.DetectSpecializations("topic01")
	if len(specs) == 0 {
		t.Fatal("topic01 not ambiguous")
	}
	seq := p.BuildProblem("topic01", specs)
	par := p.BuildProblemParallel("topic01", specs)

	if len(seq.Candidates) != len(par.Candidates) {
		t.Fatalf("candidates: %d vs %d", len(seq.Candidates), len(par.Candidates))
	}
	for i := range seq.Candidates {
		if !reflect.DeepEqual(seq.Candidates[i], par.Candidates[i]) {
			t.Fatalf("candidate %d differs", i)
		}
	}
	if len(seq.Specs) != len(par.Specs) {
		t.Fatalf("specs: %d vs %d", len(seq.Specs), len(par.Specs))
	}
	for j := range seq.Specs {
		if !reflect.DeepEqual(seq.Specs[j], par.Specs[j]) {
			t.Fatalf("spec %d (%s) differs", j, seq.Specs[j].Query)
		}
	}
}

func TestDiversifyParallelSameSERP(t *testing.T) {
	p := buildTiny(t)
	for _, alg := range []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect} {
		seq, _ := p.Diversify("topic01", alg)
		par, _ := p.DiversifyParallel("topic01", alg)
		if !reflect.DeepEqual(core.IDs(seq), core.IDs(par)) {
			t.Errorf("%s: parallel SERP differs:\nseq %v\npar %v", alg, core.IDs(seq), core.IDs(par))
		}
	}
}

func TestDiversifyParallelUnambiguous(t *testing.T) {
	p := buildTiny(t)
	sel, specs := p.DiversifyParallel("noise query 0002", core.AlgOptSelect)
	if specs != nil {
		t.Errorf("unambiguous query got specs %v", specs)
	}
	if len(sel) > p.Config.K {
		t.Errorf("selected %d > K", len(sel))
	}
}

// The parallel architecture must be race-free under concurrent queries
// (run with -race in CI to exercise this fully).
func TestDiversifyParallelConcurrentQueries(t *testing.T) {
	p := buildTiny(t)
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- true }()
			q := "topic01"
			if g%2 == 1 {
				q = "topic02"
			}
			for i := 0; i < 5; i++ {
				sel, _ := p.DiversifyParallel(q, core.AlgOptSelect)
				if len(sel) == 0 {
					t.Errorf("goroutine %d: empty SERP", g)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
