package repro

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ranking"
)

// stagedReference computes the staged-plan SERP with a per-query k
// override — the ground truth every fused cell is byte-compared against.
func stagedReference(p *Pipeline, problem *core.Problem, alg core.Algorithm, k int, ambiguous bool) []core.Selected {
	problem.K = k
	if !ambiguous {
		return core.Baseline(problem)
	}
	return core.Diversify(alg, problem)
}

// TestFusedDifferentialSweep is the fused-plan acceptance gate: across
// weighting models × algorithms × k × shard counts × storage layouts, the
// fused execution plan (one Block-Max MaxScore scan carrying the
// per-specialization heaps) must produce output bit-identical to the
// staged plan — same IDs, ranks, normalized relevances, interned
// surrogate vectors, and selection scores, via reflect.DeepEqual. CI runs
// it as its own named step, like the mutation and mapped sweeps.
func TestFusedDifferentialSweep(t *testing.T) {
	models := []ranking.Model{ranking.DPH{}, ranking.BM25{}, ranking.TFIDF{}, ranking.LMDirichlet{}}
	algs := []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect, core.AlgMMR}
	ksweep := []int{10, 100}

	for _, m := range models {
		for _, shards := range []int{1, 4} {
			heapCfg := tinyConfig(42)
			heapCfg.Engine = engine.Config{Model: m, Shards: shards}
			heapCfg.Fused = true
			heapPipe, err := Build(heapCfg)
			if err != nil {
				t.Fatal(err)
			}

			// The mapped twin serves the very same logical index from a
			// RIDX7 file mapping (the serve -index -mmap shape).
			path := writeMappedPipeline(t, heapPipe)
			mapped, err := engine.OpenIndexFile(path, engine.Config{Model: m, Shards: shards, Mmap: true})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { mapped.Close() })
			mapCfg := heapCfg
			mapCfg.PrebuiltEngine = mapped
			mapPipe, err := Build(mapCfg)
			if err != nil {
				t.Fatal(err)
			}

			for _, tc := range []struct {
				storage string
				pipe    *Pipeline
			}{{"heap", heapPipe}, {"mapped", mapPipe}} {
				tc := tc
				name := fmt.Sprintf("%s/shards=%d/%s", m.Name(), shards, tc.storage)
				t.Run(name, func(t *testing.T) {
					sweepPipeline(t, tc.pipe, algs, ksweep)
				})
			}
		}
	}
}

// sweepPipeline byte-compares fused vs staged over every testbed topic
// query (ambiguous ones exercise the fused operator; unambiguous ones
// check the baseline degenerates identically).
func sweepPipeline(t *testing.T, pipe *Pipeline, algs []core.Algorithm, ksweep []int) {
	ctx := context.Background()
	ambiguous := 0
	for _, topic := range pipe.Testbed.Topics {
		q := topic.Query
		specs := pipe.DetectSpecializations(q)
		if len(specs) > 0 {
			ambiguous++
		}
		problem := pipe.BuildProblem(q, specs)
		for _, alg := range algs {
			for _, k := range ksweep {
				want := stagedReference(pipe, problem, alg, k, len(specs) > 0)
				got, _, err := pipe.DiversifyFusedK(ctx, q, alg, k)
				if err != nil {
					t.Fatalf("%s q=%q alg=%s k=%d: %v", t.Name(), q, alg, k, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("fused diverges from staged: q=%q alg=%s k=%d\nwant %+v\ngot  %+v",
						q, alg, k, want, got)
				}
			}
		}
	}
	if ambiguous == 0 {
		t.Fatal("no ambiguous topic queries — the sweep exercised nothing fused")
	}
}
