// Hot-path benchmarks: the three inner loops every served query pays —
// the utility matrix of Definition 2 (ComputeUtilities), document-at-a-
// time retrieval (ranking.Retrieve), and the full per-problem Diversify
// call (utilities + selection, the serving path's compute). These are the
// benchmarks cmd/bench snapshots into BENCH_<date>.json, the repo's perf
// trajectory; run them with
//
//	go test -run '^$' -bench 'ComputeUtilities|Retrieve|DiversifyFull' -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ranking"
	"repro/internal/synth"
)

// BenchmarkComputeUtilities times the O(n·|S_q|·|R_q′|) utility matrix of
// Definition 2 in isolation — the dominant per-query cost the paper's
// timings (§5, Table 1) assume is cheap enough for the critical path.
func BenchmarkComputeUtilities(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		p := synth.GenerateProblem(synth.ProblemSpec{Seed: 1, N: n, NumSpecs: 8, PerSpec: 20})
		b.Run(fmt.Sprintf("Rq=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.ComputeUtilities(p)
			}
		})
	}
}

// BenchmarkDiversifyFull times core.Diversify — utilities plus selection,
// exactly what the serving layer pays per ambiguous query once the R_q′
// artifacts are cached.
func BenchmarkDiversifyFull(b *testing.B) {
	p := synth.GenerateProblem(synth.ProblemSpec{Seed: 2, N: 1000, NumSpecs: 8, PerSpec: 20, K: 20})
	for _, alg := range []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect} {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Diversify(alg, p)
			}
		})
	}
}

// BenchmarkRetrieve times the DAAT evaluator over the memoized benchmark
// engine. Queries are built from the highest-document-frequency terms of
// the index (densestTerms, shared with the sharded benchmarks) so the
// accumulator structure — not term lookup — dominates.
func BenchmarkRetrieve(b *testing.B) {
	pipe := buildBenchPipeline(b)
	idx := pipe.Engine.Index()
	model := pipe.Engine.Model()
	terms := densestTerms(b, 8)
	for _, nTerms := range []int{2, 4, 8} {
		tokens := terms[:nTerms]
		b.Run(fmt.Sprintf("terms=%d", nTerms), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ranking.Retrieve(idx, model, tokens, 100)
			}
		})
	}
}
