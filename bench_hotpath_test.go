// Hot-path benchmarks: the three inner loops every served query pays —
// the utility matrix of Definition 2 (ComputeUtilities), document-at-a-
// time retrieval (ranking.Retrieve), and the full per-problem Diversify
// call (utilities + selection, the serving path's compute). These are the
// benchmarks cmd/bench snapshots into BENCH_<date>.json, the repo's perf
// trajectory; run them with
//
//	go test -run '^$' -bench 'ComputeUtilities|Retrieve|DiversifyFull' -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/ranking"
	"repro/internal/synth"
)

// BenchmarkComputeUtilities times the O(n·|S_q|·|R_q′|) utility matrix of
// Definition 2 in isolation — the dominant per-query cost the paper's
// timings (§5, Table 1) assume is cheap enough for the critical path.
func BenchmarkComputeUtilities(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		p := synth.GenerateProblem(synth.ProblemSpec{Seed: 1, N: n, NumSpecs: 8, PerSpec: 20})
		b.Run(fmt.Sprintf("Rq=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.ComputeUtilities(p)
			}
		})
	}
}

// BenchmarkDiversifyFull times core.Diversify — utilities plus selection,
// exactly what the serving layer pays per ambiguous query once the R_q′
// artifacts are cached.
func BenchmarkDiversifyFull(b *testing.B) {
	p := synth.GenerateProblem(synth.ProblemSpec{Seed: 2, N: 1000, NumSpecs: 8, PerSpec: 20, K: 20})
	for _, alg := range []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect} {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Diversify(alg, p)
			}
		})
	}
}

// BenchmarkRetrieve times the DAAT evaluator over the memoized benchmark
// engine. Queries are built from the highest-document-frequency terms of
// the index (densestTerms, shared with the sharded benchmarks) so the
// accumulator structure — not term lookup — dominates.
func BenchmarkRetrieve(b *testing.B) {
	pipe := buildBenchPipeline(b)
	idx := pipe.Engine.Index()
	model := pipe.Engine.Model()
	terms := densestTerms(b, 8)
	for _, nTerms := range []int{2, 4, 8} {
		tokens := terms[:nTerms]
		b.Run(fmt.Sprintf("terms=%d", nTerms), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ranking.Retrieve(idx, model, tokens, 100)
			}
		})
	}
}

// BenchmarkRetrievePruned pits MaxScore dynamic pruning against the
// exhaustive evaluator on identical queries at k=100 — the tentpole
// comparison of the pruning PR. Output is bit-identical (the
// differential tests in internal/ranking enforce it); only the posting
// work differs.
//
// It runs over a dedicated collection-scale index (20k docs, Zipf
// vocabulary — the shape of ranking.BenchmarkRetrieveDPH) rather than
// the small shared bench pipeline: dynamic pruning's regime is
// k ≪ matching documents (the paper's Table 3 retrieves from ClueWeb,
// not from a thousand-doc testbed), and on a corpus where the top-100 is
// a tenth of every match, no threshold can form and the comparison
// measures only cursor overhead. Query shapes cover the head-heavy and
// mixed-selectivity cases a Zipf query stream produces; the max-score
// table is installed at build time, so "maxscore" measures steady-state
// serving, not table construction.
func BenchmarkRetrievePruned(b *testing.B) {
	idx := buildPruningBenchIndex(b)
	model := ranking.DPH{}
	if !ranking.Pruneable(idx, model) {
		b.Fatal("pruning bench index has no max-score table")
	}
	for _, q := range []struct {
		name   string
		tokens []string
	}{
		{"head3", []string{"t0000", "t0003", "t0050"}},
		{"dense4", []string{"t0000", "t0001", "t0002", "t0003"}},
		{"mixed4", []string{"t2000", "t3000", "t0000", "t0001"}},
	} {
		b.Run("exhaustive/"+q.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ranking.Retrieve(idx, model, q.tokens, 100)
			}
		})
		b.Run("maxscore/"+q.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ranking.RetrievePruned(idx, model, q.tokens, 100)
			}
		})
	}
}

// BenchmarkRetrieveLayout pits the block-compressed posting layout
// against the flat []Posting layout on the same 20k-doc Zipf index, over
// the exhaustive evaluator (decode cost shows) and the pruned one (block
// skipping shows), at k=100. Each layout also reports its storage
// footprint as a bytes/posting metric — the number the compression
// exists to shrink (flat = 8.0 by construction) — so the committed
// BENCH snapshots track index size next to latency, and cmd/bench's
// delta table surfaces size regressions.
func BenchmarkRetrieveLayout(b *testing.B) {
	model := ranking.DPH{}
	layouts := []struct {
		name string
		idx  *index.Index
	}{
		{"block128", buildPruningBenchIndex(b)},
		{"flat", buildFlatBenchIndex(b)},
	}
	queries := []struct {
		name   string
		tokens []string
	}{
		{"head3", []string{"t0000", "t0003", "t0050"}},
		{"mixed4", []string{"t2000", "t3000", "t0000", "t0001"}},
	}
	for _, lay := range layouts {
		if !ranking.Pruneable(lay.idx, model) {
			b.Fatalf("%s index has no max-score table", lay.name)
		}
		st := lay.idx.Storage()
		b.Run("storage/"+lay.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = lay.idx.Storage()
			}
			b.ReportMetric(st.BytesPerPosting, "bytes/posting")
		})
		for _, q := range queries {
			b.Run("exhaustive/"+lay.name+"/"+q.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ranking.Retrieve(lay.idx, model, q.tokens, 100)
				}
			})
			b.Run("maxscore/"+lay.name+"/"+q.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ranking.RetrievePruned(lay.idx, model, q.tokens, 100)
				}
			})
		}
	}
}
