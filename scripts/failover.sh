#!/usr/bin/env bash
# End-to-end failover gate for the distributed serving tier.
#
# Topology: one router over two shards — shard 0 with TWO replicas,
# shard 1 with one — plus a single-process serve as the byte-identity
# reference. All three workers serve ONE shared RIDX7 image built by
# `buildindex -format mmap` and opened with `serve -worker -index ...
# -mmap`: no per-worker index build, the mapping is shared through the
# page cache, and the re-admission phase measures a realistic respawn
# (open the image, not rebuild the world). The gate has three parts:
#
#   1. Differential: router /search must be byte-identical (modulo the
#      timing field took_us) to single-process /search across
#      algorithms x k over real queries.
#   2. Chaos: kill -9 one shard-0 replica while loadgen drives traffic
#      with -fail-on-error; the run must finish with ZERO failed
#      requests (the surviving replica absorbs the failover).
#   3. Re-admission: restart the killed replica and require the
#      router's breaker to re-admit it (state closed + healthy in
#      /stats) within the probe/cooldown budget.
#   4. Tail (SIGSTOP): freeze a shard-0 replica mid-run — the worst
#      tail case: TCP accepts, nothing answers. Hedged requests must
#      keep the run at ZERO failures with p99 far under the 2s attempt
#      timeout, /stats must show hedges + hedge wins, and SIGCONT must
#      get the replica re-admitted.
#   5. Degraded (whole shard): freeze shard 1's ONLY replica — with
#      -partial the router must keep answering 200 with degraded:true
#      (body + X-Degraded header, never a 503), and recover to
#      byte-identical full-fidelity service after SIGCONT.
#
# Exit status is nonzero on any violation. Needs: go, curl, bash.
set -euo pipefail

WORLD="-seed 1 -topics 8 -sessions 3000 -candidates 200"
SINGLE=127.0.0.1:19100
W1=127.0.0.1:19101 # shard pool 0, replica a (the one we kill)
W2=127.0.0.1:19102 # shard pool 0, replica b
W3=127.0.0.1:19103 # shard pool 1
ROUTER=127.0.0.1:19200

workdir=$(mktemp -d)
pids=()
cleanup() {
  kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/serve" ./cmd/serve
go build -o "$workdir/router" ./cmd/router
go build -o "$workdir/loadgen" ./cmd/loadgen
go build -o "$workdir/buildindex" ./cmd/buildindex

echo "== building the shared mapped index image"
"$workdir/buildindex" -format mmap -seed 1 -topics 8 -shards 2 \
  -o "$workdir/index.ridx7" 2>&1 | sed 's/^/   /'

start_worker() { # $1=addr ; echoes pid
  "$workdir/serve" -worker -shards 2 -index "$workdir/index.ridx7" -mmap \
    -addr "$1" >>"$workdir/log.$1" 2>&1 &
  echo $!
}

echo "== starting 3 workers, 1 single-process reference, 1 router"
w1_pid=$(start_worker "$W1"); pids+=("$w1_pid")
pids+=("$(start_worker "$W2")")
w3_pid=$(start_worker "$W3"); pids+=("$w3_pid")
"$workdir/serve" $WORLD -shards 2 -addr "$SINGLE" >>"$workdir/log.single" 2>&1 &
pids+=($!)
# Tail tolerance on: fixed 150ms hedge trigger (quantile off so hedges
# fire ONLY when something is actually slow), a generous extra-attempt
# budget, and partial results for the whole-shard phase.
"$workdir/router" $WORLD -addr "$ROUTER" \
  -shard "http://$W1,http://$W2" -shard "http://$W3" \
  -fail-threshold 1 -cooldown 200ms -cooldown-max 2s -probe-interval 250ms \
  -hedge-after 150ms -hedge-quantile 0 -extra-ratio 0.5 -extra-burst 200 -partial \
  >>"$workdir/log.router" 2>&1 &
pids+=($!)

wait_ready() { # $1=host:port $2=name
  for _ in $(seq 1 240); do
    if curl -sf "http://$1/readyz" >/dev/null 2>&1; then
      echo "   $2 ready"
      return 0
    fi
    sleep 0.5
  done
  echo "FAIL: $2 never became ready" >&2
  tail -50 "$workdir"/log.* >&2 || true
  exit 1
}
wait_ready "$SINGLE" "single-process serve"
wait_ready "$ROUTER" "router"

echo "== differential: router vs single-process, algorithms x k"
mapfile -t queries < <(curl -sf "http://$SINGLE/queries" |
  sed 's/.*\[//; s/\].*//' | tr ',' '\n' | tr -d '"' | head -5)
[ "${#queries[@]}" -ge 3 ] || { echo "FAIL: could not fetch queries" >&2; exit 1; }
normalize() { sed 's/"took_us":[0-9]*/"took_us":0/'; }
checked=0
for q in "${queries[@]}"; do
  for alg in baseline optselect xquad iaselect mmr; do
    for k in 5 10; do
      a=$(curl -sf --get "http://$SINGLE/search" --data-urlencode "q=$q" --data "alg=$alg&k=$k" | normalize)
      b=$(curl -sf --get "http://$ROUTER/search" --data-urlencode "q=$q" --data "alg=$alg&k=$k" | normalize)
      if [ "$a" != "$b" ]; then
        echo "FAIL: diverged on q='$q' alg=$alg k=$k" >&2
        echo "single: $a" >&2
        echo "router: $b" >&2
        exit 1
      fi
      checked=$((checked + 1))
    done
  done
done
echo "   $checked request pairs byte-identical"

echo "== chaos: kill -9 a shard-0 replica under load, require zero failed requests"
"$workdir/loadgen" -addr "http://$ROUTER" -n 600 -c 8 -fail-on-error >"$workdir/loadgen.out" 2>&1 &
lg_pid=$!
sleep 2
kill -9 "$w1_pid"
echo "   replica $W1 killed mid-run"
if ! wait "$lg_pid"; then
  echo "FAIL: loadgen saw failed requests during failover" >&2
  cat "$workdir/loadgen.out" >&2
  exit 1
fi
grep -E 'requests|errors' "$workdir/loadgen.out" | sed 's/^/   /'

echo "== re-admission: restart the replica, breaker must close again"
w1_pid=$(start_worker "$W1"); pids+=("$w1_pid")
readmitted=""
for _ in $(seq 1 240); do
  if curl -sf "http://$ROUTER/stats" |
    grep -q "\"url\":\"http://$W1\",\"weight\":1,\"state\":\"closed\",\"healthy\":true"; then
    readmitted=yes
    break
  fi
  sleep 0.5
done
if [ -z "$readmitted" ]; then
  echo "FAIL: restarted replica was not re-admitted (router /stats):" >&2
  curl -s "http://$ROUTER/stats" >&2 || true
  exit 1
fi
echo "   replica re-admitted (breaker closed, healthy)"

echo "== post-recovery differential spot check"
q=${queries[0]}
a=$(curl -sf --get "http://$SINGLE/search" --data-urlencode "q=$q" --data "alg=optselect&k=10" | normalize)
b=$(curl -sf --get "http://$ROUTER/search" --data-urlencode "q=$q" --data "alg=optselect&k=10" | normalize)
[ "$a" = "$b" ] || { echo "FAIL: diverged after recovery" >&2; exit 1; }

tail_stat() { # $1=counter name in the /stats tail block; echoes its value
  curl -sf "http://$ROUTER/stats" | grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2
}
wait_readmitted() { # $1=host:port $2=name
  local ok=""
  for _ in $(seq 1 240); do
    if curl -sf "http://$ROUTER/stats" |
      grep -q "\"url\":\"http://$1\",\"weight\":1,\"state\":\"closed\",\"healthy\":true"; then
      ok=yes
      break
    fi
    sleep 0.5
  done
  if [ -z "$ok" ]; then
    echo "FAIL: $2 was not re-admitted after SIGCONT (router /stats):" >&2
    curl -s "http://$ROUTER/stats" >&2 || true
    exit 1
  fi
  echo "   $2 re-admitted (breaker closed, healthy)"
}

echo "== tail: SIGSTOP a shard-0 replica under load; hedging must hold p99 with zero failures"
hedges_before=$(tail_stat hedges)
"$workdir/loadgen" -addr "http://$ROUTER" -n 600 -c 8 -fail-on-error \
  -json "$workdir/hedge.json" -name Failover/hedged >"$workdir/loadgen.hedge.out" 2>&1 &
lg_pid=$!
sleep 1
kill -STOP "$w1_pid"
echo "   replica $W1 frozen (SIGSTOP) mid-run"
if ! wait "$lg_pid"; then
  echo "FAIL: loadgen saw failed requests with a frozen replica (hedging should rescue them)" >&2
  cat "$workdir/loadgen.hedge.out" >&2
  exit 1
fi
grep -E 'requests|errors|hedged' "$workdir/loadgen.hedge.out" | sed 's/^/   /'
p99=$(grep -o '"p99_ms": *[0-9.]*' "$workdir/hedge.json" | grep -o '[0-9.]*$')
# A hedge-less router would strand every frozen-replica request until the
# 2000ms attempt timeout; hedging at 150ms must keep p99 well under that.
if ! awk -v p="$p99" 'BEGIN { exit !(p < 1500) }'; then
  echo "FAIL: p99 ${p99}ms with a frozen replica (want < 1500ms via hedging)" >&2
  exit 1
fi
echo "   p99 ${p99}ms under the frozen replica (attempt timeout 2000ms)"
hedges=$(tail_stat hedges)
hedge_wins=$(tail_stat hedge_wins)
if [ "$hedges" -le "${hedges_before:-0}" ] || [ "$hedge_wins" -eq 0 ]; then
  echo "FAIL: /stats tail shows hedges=$hedges (before: $hedges_before) hedge_wins=$hedge_wins" >&2
  exit 1
fi
echo "   /stats tail: $hedges hedges, $hedge_wins wins"

kill -CONT "$w1_pid"
echo "== re-admission after SIGCONT"
wait_readmitted "$W1" "thawed shard-0 replica"

echo "== degraded: freeze shard 1's only replica; -partial must answer 200 degraded, never 503"
kill -STOP "$w3_pid"
for i in 1 2 3; do
  code=$(curl -s -o "$workdir/deg.body" -D "$workdir/deg.hdr" -w '%{http_code}' \
    -H "X-Search-Budget: 1500ms" --get "http://$ROUTER/search" \
    --data-urlencode "q=$q" --data "alg=optselect&k=10")
  if [ "$code" != 200 ]; then
    echo "FAIL: request $i with shard 1 frozen: HTTP $code (want 200 degraded, never 503)" >&2
    cat "$workdir/deg.body" >&2
    exit 1
  fi
  grep -q '"degraded":true' "$workdir/deg.body" ||
    { echo "FAIL: request $i body lacks degraded:true" >&2; cat "$workdir/deg.body" >&2; exit 1; }
  grep -qi '^X-Degraded: *true' "$workdir/deg.hdr" ||
    { echo "FAIL: request $i missing X-Degraded header" >&2; cat "$workdir/deg.hdr" >&2; exit 1; }
done
degraded=$(tail_stat degraded)
dropped=$(tail_stat shards_dropped)
if [ "$degraded" -eq 0 ] || [ "$dropped" -eq 0 ]; then
  echo "FAIL: /stats tail shows degraded=$degraded shards_dropped=$dropped" >&2
  exit 1
fi
echo "   3/3 degraded 200s (body + header), /stats tail: degraded=$degraded shards_dropped=$dropped"

kill -CONT "$w3_pid"
echo "== recovery to full fidelity after SIGCONT"
wait_readmitted "$W3" "thawed shard-1 replica"
a=$(curl -sf --get "http://$SINGLE/search" --data-urlencode "q=$q" --data "alg=optselect&k=10" | normalize)
b=$(curl -sf --get "http://$ROUTER/search" --data-urlencode "q=$q" --data "alg=optselect&k=10" | normalize)
[ "$a" = "$b" ] || { echo "FAIL: diverged after degraded recovery" >&2; exit 1; }
echo "$b" | grep -q '"degraded":true' && { echo "FAIL: still degraded after recovery" >&2; exit 1; }

echo "PASS: differential + failover + re-admission + hedged-tail + degraded all green"
