#!/usr/bin/env bash
# End-to-end failover gate for the distributed serving tier.
#
# Topology: one router over two shards — shard 0 with TWO replicas,
# shard 1 with one — plus a single-process serve as the byte-identity
# reference. All three workers serve ONE shared RIDX7 image built by
# `buildindex -format mmap` and opened with `serve -worker -index ...
# -mmap`: no per-worker index build, the mapping is shared through the
# page cache, and the re-admission phase measures a realistic respawn
# (open the image, not rebuild the world). The gate has three parts:
#
#   1. Differential: router /search must be byte-identical (modulo the
#      timing field took_us) to single-process /search across
#      algorithms x k over real queries.
#   2. Chaos: kill -9 one shard-0 replica while loadgen drives traffic
#      with -fail-on-error; the run must finish with ZERO failed
#      requests (the surviving replica absorbs the failover).
#   3. Re-admission: restart the killed replica and require the
#      router's breaker to re-admit it (state closed + healthy in
#      /stats) within the probe/cooldown budget.
#
# Exit status is nonzero on any violation. Needs: go, curl, bash.
set -euo pipefail

WORLD="-seed 1 -topics 8 -sessions 3000 -candidates 200"
SINGLE=127.0.0.1:19100
W1=127.0.0.1:19101 # shard pool 0, replica a (the one we kill)
W2=127.0.0.1:19102 # shard pool 0, replica b
W3=127.0.0.1:19103 # shard pool 1
ROUTER=127.0.0.1:19200

workdir=$(mktemp -d)
pids=()
cleanup() {
  kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/serve" ./cmd/serve
go build -o "$workdir/router" ./cmd/router
go build -o "$workdir/loadgen" ./cmd/loadgen
go build -o "$workdir/buildindex" ./cmd/buildindex

echo "== building the shared mapped index image"
"$workdir/buildindex" -format mmap -seed 1 -topics 8 -shards 2 \
  -o "$workdir/index.ridx7" 2>&1 | sed 's/^/   /'

start_worker() { # $1=addr ; echoes pid
  "$workdir/serve" -worker -shards 2 -index "$workdir/index.ridx7" -mmap \
    -addr "$1" >>"$workdir/log.$1" 2>&1 &
  echo $!
}

echo "== starting 3 workers, 1 single-process reference, 1 router"
w1_pid=$(start_worker "$W1"); pids+=("$w1_pid")
pids+=("$(start_worker "$W2")")
pids+=("$(start_worker "$W3")")
"$workdir/serve" $WORLD -shards 2 -addr "$SINGLE" >>"$workdir/log.single" 2>&1 &
pids+=($!)
"$workdir/router" $WORLD -addr "$ROUTER" \
  -shard "http://$W1,http://$W2" -shard "http://$W3" \
  -fail-threshold 1 -cooldown 200ms -cooldown-max 2s -probe-interval 250ms \
  >>"$workdir/log.router" 2>&1 &
pids+=($!)

wait_ready() { # $1=host:port $2=name
  for _ in $(seq 1 240); do
    if curl -sf "http://$1/readyz" >/dev/null 2>&1; then
      echo "   $2 ready"
      return 0
    fi
    sleep 0.5
  done
  echo "FAIL: $2 never became ready" >&2
  tail -50 "$workdir"/log.* >&2 || true
  exit 1
}
wait_ready "$SINGLE" "single-process serve"
wait_ready "$ROUTER" "router"

echo "== differential: router vs single-process, algorithms x k"
mapfile -t queries < <(curl -sf "http://$SINGLE/queries" |
  sed 's/.*\[//; s/\].*//' | tr ',' '\n' | tr -d '"' | head -5)
[ "${#queries[@]}" -ge 3 ] || { echo "FAIL: could not fetch queries" >&2; exit 1; }
normalize() { sed 's/"took_us":[0-9]*/"took_us":0/'; }
checked=0
for q in "${queries[@]}"; do
  for alg in baseline optselect xquad iaselect mmr; do
    for k in 5 10; do
      a=$(curl -sf --get "http://$SINGLE/search" --data-urlencode "q=$q" --data "alg=$alg&k=$k" | normalize)
      b=$(curl -sf --get "http://$ROUTER/search" --data-urlencode "q=$q" --data "alg=$alg&k=$k" | normalize)
      if [ "$a" != "$b" ]; then
        echo "FAIL: diverged on q='$q' alg=$alg k=$k" >&2
        echo "single: $a" >&2
        echo "router: $b" >&2
        exit 1
      fi
      checked=$((checked + 1))
    done
  done
done
echo "   $checked request pairs byte-identical"

echo "== chaos: kill -9 a shard-0 replica under load, require zero failed requests"
"$workdir/loadgen" -addr "http://$ROUTER" -n 600 -c 8 -fail-on-error >"$workdir/loadgen.out" 2>&1 &
lg_pid=$!
sleep 2
kill -9 "$w1_pid"
echo "   replica $W1 killed mid-run"
if ! wait "$lg_pid"; then
  echo "FAIL: loadgen saw failed requests during failover" >&2
  cat "$workdir/loadgen.out" >&2
  exit 1
fi
grep -E 'requests|errors' "$workdir/loadgen.out" | sed 's/^/   /'

echo "== re-admission: restart the replica, breaker must close again"
w1_pid=$(start_worker "$W1"); pids+=("$w1_pid")
readmitted=""
for _ in $(seq 1 240); do
  if curl -sf "http://$ROUTER/stats" |
    grep -q "\"url\":\"http://$W1\",\"weight\":1,\"state\":\"closed\",\"healthy\":true"; then
    readmitted=yes
    break
  fi
  sleep 0.5
done
if [ -z "$readmitted" ]; then
  echo "FAIL: restarted replica was not re-admitted (router /stats):" >&2
  curl -s "http://$ROUTER/stats" >&2 || true
  exit 1
fi
echo "   replica re-admitted (breaker closed, healthy)"

echo "== post-recovery differential spot check"
q=${queries[0]}
a=$(curl -sf --get "http://$SINGLE/search" --data-urlencode "q=$q" --data "alg=optselect&k=10" | normalize)
b=$(curl -sf --get "http://$ROUTER/search" --data-urlencode "q=$q" --data "alg=optselect&k=10" | normalize)
[ "$a" = "$b" ] || { echo "FAIL: diverged after recovery" >&2; exit 1; }

echo "PASS: differential + failover + re-admission all green"
