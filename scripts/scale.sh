#!/usr/bin/env bash
# Replica-scaling curve for the distributed serving tier over ONE shared
# mapped index image.
#
# One RIDX7 image is built once with `buildindex -format mmap`; then for
# each replica count N in 1, 2, 4 the script starts N shard workers that
# all mmap that same file (`serve -worker -index ... -mmap` — instant
# startup, page cache shared between the processes), puts a router in
# front of them as one replica pool, and drives a fixed Zipf workload
# through loadgen. Client-observed QPS and latency percentiles for each
# N are folded into the committed benchmark snapshot (BENCH_<date>.json
# by default, override with $1) as QPSScale/workers=N points via
# `bench -merge`, so the scaling curve lives next to the go-test
# benchmarks and future sessions can diff it.
#
# Every run uses -fail-on-error: a point only lands if zero requests
# failed. Needs: go, curl, bash.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_$(date -u +%F).json}
WORLD="-seed 1 -topics 8 -sessions 3000 -candidates 200"
N_REQ=${N_REQ:-1500}
CONC=${CONC:-16}
ROUTER=127.0.0.1:19300
PORTS=(19301 19302 19303 19304)

workdir=$(mktemp -d)
pids=()
cleanup() {
  kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/serve" ./cmd/serve
go build -o "$workdir/router" ./cmd/router
go build -o "$workdir/loadgen" ./cmd/loadgen
go build -o "$workdir/buildindex" ./cmd/buildindex
go build -o "$workdir/bench" ./cmd/bench

echo "== building the shared mapped index image"
"$workdir/buildindex" -format mmap -seed 1 -topics 8 -shards 1 \
  -o "$workdir/index.ridx7" 2>&1 | sed 's/^/   /'

wait_ready() { # $1=host:port $2=name
  for _ in $(seq 1 240); do
    if curl -sf "http://$1/readyz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.5
  done
  echo "FAIL: $2 never became ready" >&2
  tail -50 "$workdir"/log.* >&2 || true
  exit 1
}

points="$workdir/points.jsonl"
: >"$points"

run_scale() { # $1 = replica count
  local n=$1 pool="" addr
  local run_pids=()
  echo "== $n replica(s) over the mapped image"
  for i in $(seq 0 $((n - 1))); do
    addr=127.0.0.1:${PORTS[$i]}
    "$workdir/serve" -worker -shards 1 -index "$workdir/index.ridx7" -mmap \
      -addr "$addr" >>"$workdir/log.worker.$addr" 2>&1 &
    run_pids+=($!)
    pool+=${pool:+,}http://$addr
  done
  "$workdir/router" $WORLD -addr "$ROUTER" -shard "$pool" \
    >>"$workdir/log.router.$n" 2>&1 &
  run_pids+=($!)
  pids+=("${run_pids[@]}")
  wait_ready "$ROUTER" "router ($n replicas)"
  "$workdir/loadgen" -addr "http://$ROUTER" -n "$N_REQ" -c "$CONC" -fail-on-error \
    -json "$workdir/point.$n.json" -name "QPSScale/workers=$n" \
    >"$workdir/loadgen.$n.out" 2>&1 ||
    { echo "FAIL: loadgen at $n replicas" >&2; cat "$workdir/loadgen.$n.out" >&2; exit 1; }
  grep -E 'throughput|latency p99' "$workdir/loadgen.$n.out" | sed 's/^/   /'
  cat "$workdir/point.$n.json" >>"$points"
  kill "${run_pids[@]}" 2>/dev/null || true
  wait "${run_pids[@]}" 2>/dev/null || true
}

for n in 1 2 4; do
  run_scale "$n"
done

echo "== merging points into $OUT"
"$workdir/bench" -merge "$points" -out "$OUT"

echo "== scaling curve (client-observed)"
for n in 1 2 4; do
  qps=$(grep -oE '"qps": [0-9.]+' "$workdir/point.$n.json" | awk '{printf "%.0f", $2}')
  p99=$(grep -oE '"p99_ms": [0-9.]+' "$workdir/point.$n.json" | awk '{print $2}')
  printf '   workers=%d  qps=%s  p99=%sms\n' "$n" "$qps" "$p99"
done
echo "PASS: scaling curve recorded"
