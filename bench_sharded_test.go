// Sharded-retrieval benchmarks: the scale-out counterparts of the
// hot-path set. BenchmarkRetrieveSharded sweeps the shard fan-out of one
// query; BenchmarkSpecRetrieval compares the two ways a request's R_q′
// lists can be fetched — sequential per-specialization retrieval (the
// pre-segmentation architecture) against the batched scatter-gather that
// scores the main query and every specialization in one pass per shard.
// Run them with
//
//	go test -run '^$' -bench 'RetrieveSharded|SpecRetrieval' -benchmem -cpu 1,2
package repro_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/ranking"
	"repro/internal/suggest"
	"repro/internal/text"
)

// densestTerms returns the n highest-document-frequency index terms,
// deterministically (the same query shape BenchmarkRetrieve uses).
func densestTerms(b *testing.B, n int) []string {
	b.Helper()
	idx := buildBenchPipeline(b).Engine.Index()
	type termDF struct {
		term string
		df   int
	}
	tds := make([]termDF, idx.NumTerms())
	for id := range tds {
		tds[id] = termDF{term: idx.Term(int32(id)), df: idx.DF(int32(id))}
	}
	sort.Slice(tds, func(i, j int) bool {
		if tds[i].df != tds[j].df {
			return tds[i].df > tds[j].df
		}
		return tds[i].term < tds[j].term
	})
	if n > len(tds) {
		b.Skip("dictionary too small")
	}
	terms := make([]string, n)
	for i := range terms {
		terms[i] = tds[i].term
	}
	return terms
}

// BenchmarkRetrieveSharded times one dense 4-term query across shard
// counts. shards=1 exposes the scatter-plan overhead over plain Retrieve;
// higher counts show the fan-out win once GOMAXPROCS > 1.
func BenchmarkRetrieveSharded(b *testing.B) {
	pipe := buildBenchPipeline(b)
	model := pipe.Engine.Model()
	tokens := densestTerms(b, 4)
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4, 8} {
		seg := pipe.Engine.Segments().Resegment(shards)
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ranking.RetrieveSharded(ctx, seg, model, tokens, 100); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchAmbiguousQuery finds a testbed query that Algorithm 1 flags as
// ambiguous, with its specializations — the R_q′ workload.
func benchAmbiguousQuery(b *testing.B) (string, []suggest.Specialization) {
	b.Helper()
	pipe := buildBenchPipeline(b)
	for _, topic := range pipe.Testbed.Topics {
		if specs := pipe.DetectSpecializations(topic.Query); len(specs) >= 3 {
			return topic.Query, specs
		}
	}
	b.Skip("no ambiguous topic in the bench testbed")
	return "", nil
}

// BenchmarkSpecRetrieval measures the document-scoring phase of one
// ambiguous request — R_q plus every R_q′ — under the two architectures:
//
//	sequential: 1+|S_q| separate index traversals (BuildProblem)
//	batched:    one scatter-gather round; each shard worker scores all
//	            pending query vectors in a single pass (BuildProblemBatched)
//
// The batched path wins even at GOMAXPROCS=1 because specializations
// share terms with the main query, so postings are traversed and model
// scores computed once instead of per-list; extra cores stack the shard
// parallelism on top (run with -cpu 1,2).
func BenchmarkSpecRetrieval(b *testing.B) {
	pipe := buildBenchPipeline(b)
	query, specs := benchAmbiguousQuery(b)
	ctx := context.Background()

	// Pipeline level: everything a request's scoring phase pays,
	// including snippet extraction and vectorization (identical work in
	// both arms — it dilutes but never flips the retrieval difference).
	b.Run(fmt.Sprintf("pipeline/sequential/specs=%d", len(specs)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pipe.BuildProblem(query, specs)
		}
	})
	b.Run(fmt.Sprintf("pipeline/batched/specs=%d", len(specs)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pipe.BuildProblemBatched(ctx, query, specs); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Retrieval level: the index traversals alone, where the batched
	// fan-out's term sharing and per-shard single pass actually live.
	analyzer := text.NewAnalyzer() // the bench pipeline uses the default chain
	model := pipe.Engine.Model()
	queries := make([][]string, 1+len(specs))
	ks := make([]int, 1+len(specs))
	queries[0], ks[0] = analyzer.Tokens(query), pipe.Config.NumCandidates
	for i, s := range specs {
		queries[1+i], ks[1+i] = analyzer.Tokens(s.Query), pipe.Config.PerSpec
	}
	idx := pipe.Engine.Index()
	for _, shards := range []int{1, 4} {
		seg := pipe.Engine.Segments().Resegment(shards)
		b.Run(fmt.Sprintf("retrieval/sequential/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for qi := range queries {
					if shards == 1 {
						ranking.Retrieve(idx, model, queries[qi], ks[qi])
						continue
					}
					if _, err := ranking.RetrieveSharded(ctx, seg, model, queries[qi], ks[qi]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("retrieval/batched/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ranking.RetrieveBatch(ctx, seg, model, queries, ks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
