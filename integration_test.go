package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/qfg"
	"repro/internal/querylog"
	"repro/internal/suggest"
	"repro/internal/synth"
	"repro/internal/trec"
)

// TestFullSystemThroughSerializedArtifacts drives the complete paper
// pipeline through every on-disk format the repository defines, the way a
// production deployment would be split across processes:
//
//	offline:  corpus → engine → SaveTo      (cmd/buildindex)
//	offline:  log → TSV → sessions → A(q)   (cmd/loggen | cmd/mine)
//	offline:  topics + qrels round-tripped  (trec formats)
//	online:   Load(engine) + Algorithm 1 + OptSelect → run file
//	offline:  run file → α-NDCG/IA-P        (cmd/trecdiv's metrics)
//
// Every hand-off crosses a serialization boundary, so format drift in any
// codec breaks this test.
func TestFullSystemThroughSerializedArtifacts(t *testing.T) {
	tb := synth.GenerateTestbed(synth.CorpusSpec{
		Seed: 31, NumTopics: 5, MinSubtopics: 2, MaxSubtopics: 4,
		DocsPerSubtopic: 10, GenericDocsPerTopic: 5, NoiseDocs: 80,
		DocLength: 40, BackgroundVocab: 400, TopicVocab: 10, SubtopicVocab: 8,
	})

	// --- offline indexing, through the engine persistence format.
	built, err := engine.Build(tb.Docs, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var engBuf bytes.Buffer
	if err := built.SaveTo(&engBuf); err != nil {
		t.Fatal(err)
	}
	eng, err := engine.Load(&engBuf, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// --- offline log mining, through the TSV format.
	rawLog := synth.GenerateLog(tb, synth.AOLLike(32, 2500))
	var logBuf bytes.Buffer
	if err := querylog.Write(&logBuf, rawLog); err != nil {
		t.Fatal(err)
	}
	log, err := querylog.Read(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	sessions := qfg.ExtractSessions(log, qfg.Options{})
	rec := suggest.Train(sessions, log.Frequencies(), suggest.TrainOptions{})

	// --- testbed artifacts, through the TREC formats.
	var topicsBuf, qrelsBuf bytes.Buffer
	if err := trec.WriteTopics(&topicsBuf, tb.Topics); err != nil {
		t.Fatal(err)
	}
	topics, err := trec.ReadTopics(&topicsBuf)
	if err != nil {
		t.Fatal(err)
	}
	if err := trec.WriteQrels(&qrelsBuf, tb.Qrels); err != nil {
		t.Fatal(err)
	}
	qrels, err := trec.ReadQrels(&qrelsBuf)
	if err != nil {
		t.Fatal(err)
	}

	// --- online serving: detect, diversify, emit a TREC run.
	run := trec.NewRun()
	diversifiedTopics := 0
	for _, topic := range topics {
		specs := suggest.TopSpecializations(
			suggest.AmbiguousQueryDetect(topic.Query, rec, suggest.DefaultDetectOptions()), 8)
		results := eng.Search(topic.Query, 200)
		if len(results) == 0 {
			t.Fatalf("topic %d: no results", topic.ID)
		}
		problem := &core.Problem{
			Query: topic.Query, K: 50, Lambda: 0.15, Threshold: 0.2,
		}
		maxScore := results[0].Score
		for _, r := range results {
			if r.Score > maxScore {
				maxScore = r.Score
			}
		}
		for _, r := range results {
			problem.Candidates = append(problem.Candidates, core.Doc{
				ID: r.DocID, Rank: r.Rank, Rel: r.Score / maxScore,
				Vector: eng.VectorOfText(r.Snippet),
			})
		}
		for _, s := range specs {
			var rs []core.SpecResult
			for _, r := range eng.Search(s.Query, 10) {
				rs = append(rs, core.SpecResult{ID: r.DocID, Rank: r.Rank, Vector: eng.VectorOfText(r.Snippet)})
			}
			problem.Specs = append(problem.Specs, core.Specialization{Query: s.Query, Prob: s.Prob, Results: rs})
		}
		if len(problem.Specs) > 0 {
			diversifiedTopics++
		}
		sel := core.Diversify(core.AlgOptSelect, problem)
		ids := make([]string, len(sel))
		for i, s := range sel {
			ids[i] = s.ID
		}
		run.AddRanking(topic.ID, ids, "integration")
	}
	if diversifiedTopics == 0 {
		t.Fatal("Algorithm 1 fired on no topics")
	}

	// --- run file round trip, then evaluation.
	var runBuf bytes.Buffer
	if err := trec.WriteRun(&runBuf, run); err != nil {
		t.Fatal(err)
	}
	loadedRun, err := trec.ReadRun(&runBuf)
	if err != nil {
		t.Fatal(err)
	}
	rep := eval.EvaluateRun("integration", loadedRun, qrels, eval.DefaultAlpha, []int{5, 20})
	if rep.MeanAlphaNDCG(20) <= 0.1 {
		t.Errorf("end-to-end α-NDCG@20 = %f, suspiciously low", rep.MeanAlphaNDCG(20))
	}
	if rep.MeanIAP(5) <= 0 {
		t.Errorf("end-to-end IA-P@5 = %f", rep.MeanIAP(5))
	}
}
