package repro_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/ranking"
)

var (
	openBenchOnce sync.Once
	openBenchDir  string
	openBenchErr  error
)

// buildOpenBenchFiles persists the 20k-doc Zipf bench index twice: as a
// heap-decoded RIDX5 stream and as the mmap-servable RIDX7 image (both
// with the DPH max-score and block-max tables, so neither loader has to
// touch posting bytes for tables). Memoized: the files outlive the
// process in the OS temp dir for at most one bench run.
func buildOpenBenchFiles(b *testing.B) (heapPath, mmapPath string) {
	b.Helper()
	idx := buildPruningBenchIndex(b)
	openBenchOnce.Do(func() {
		openBenchDir, openBenchErr = os.MkdirTemp("", "openbench")
		if openBenchErr != nil {
			return
		}
		seg := index.SegmentIndex(idx, 1)
		write := func(name string, fn func(f *os.File) error) {
			if openBenchErr != nil {
				return
			}
			f, err := os.Create(filepath.Join(openBenchDir, name))
			if err != nil {
				openBenchErr = err
				return
			}
			if err := fn(f); err != nil {
				openBenchErr = err
				f.Close()
				return
			}
			openBenchErr = f.Close()
		}
		write("bench.ridx5", func(f *os.File) error { _, err := seg.WriteTo(f); return err })
		write("bench.ridx7", func(f *os.File) error { _, err := seg.WriteMapped(f, nil); return err })
	})
	if openBenchErr != nil {
		b.Fatal(openBenchErr)
	}
	return filepath.Join(openBenchDir, "bench.ridx5"), filepath.Join(openBenchDir, "bench.ridx7")
}

// zipfBenchQueries draws a fixed query stream from the bench vocabulary
// with the same squared-uniform skew the index was generated with.
func zipfBenchQueries(seed int64, n int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]string, n)
	for i := range out {
		q := make([]string, 2+rng.Intn(2))
		for j := range q {
			u := rng.Float64()
			q[j] = fmt.Sprintf("t%04d", int(u*u*5000))
		}
		out[i] = q
	}
	return out
}

// BenchmarkOpenIndex measures index startup: opening the persisted 20k-
// doc Zipf index as a heap-decoded stream vs mapping the RIDX7 image in
// place, each alone and with the first 100 queries of a Zipf stream run
// warm (top-100 Block-Max MaxScore retrieval) — the failover-relevant
// number, since a respawned worker pays open + first-queries before the
// router readmits it. Each sub-benchmark reports open_ms (wall-clock
// per open, including the warm queries in the warm100 variants), which
// cmd/bench tracks in its delta table.
func BenchmarkOpenIndex(b *testing.B) {
	heapPath, mmapPath := buildOpenBenchFiles(b)
	queries := zipfBenchQueries(99, 100)

	openHeap := func() (*index.Segmented, error) {
		f, err := os.Open(heapPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return index.ReadSegmented(f)
	}
	openMmap := func() (*index.Segmented, error) { return index.OpenMapped(mmapPath) }

	for _, bm := range []struct {
		name string
		open func() (*index.Segmented, error)
		warm bool
	}{
		{"heap", openHeap, false},
		{"mmap", openMmap, false},
		{"heap/warm100", openHeap, true},
		{"mmap/warm100", openMmap, true},
	} {
		b.Run(bm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seg, err := bm.open()
				if err != nil {
					b.Fatal(err)
				}
				if bm.warm {
					idx := seg.Index()
					for _, q := range queries {
						ranking.RetrievePruned(idx, ranking.DPH{}, q, 100)
					}
				}
				seg.Close()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/1e6/float64(b.N), "open_ms")
		})
	}
}
