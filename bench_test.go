// Root benchmarks: one testing.B target per table and figure of the paper
// (see DESIGN.md §4 for the experiment index). The heavyweight printed
// tables come from the cmd/ tools; these benches keep the same code paths
// exercised under `go test -bench` with laptop-friendly sizes and report
// the headline quantity of each experiment as a custom metric.
package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/exp"
	"repro/internal/ranking"
	"repro/internal/synth"
	"repro/internal/trec"
)

// BenchmarkTable2 times the three diversification algorithms over a
// reduced |R_q| × k grid (the full grid is cmd/efficiency -full). The
// paper's Table 2 shape shows here directly: OptSelect sub-benchmarks are
// near-constant in k while xQuAD/IASelect grow linearly.
func BenchmarkTable2(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		p := synth.GenerateProblem(synth.ProblemSpec{Seed: 1, N: n, NumSpecs: 8, PerSpec: 20})
		u := core.ComputeUtilities(p)
		for _, k := range []int{10, 100, 1000} {
			for _, alg := range []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect} {
				alg := alg
				pk := *p
				pk.K = k
				b.Run(fmt.Sprintf("%s/Rq=%d/k=%d", alg, n, k), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						switch alg {
						case core.AlgOptSelect:
							core.OptSelect(&pk, u)
						case core.AlgXQuAD:
							core.XQuAD(&pk, u)
						case core.AlgIASelect:
							core.IASelect(&pk, u)
						}
					}
				})
			}
		}
	}
}

// BenchmarkTable1ComplexityFit regenerates the empirical complexity
// exponents of Table 1 and reports them as custom metrics
// (opt_exp_k ~ 0: OptSelect flat in k; xquad_exp_k ~ 1: linear).
func BenchmarkTable1ComplexityFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.RunTable2(exp.Table2Spec{
			Seed: 1, Ns: []int{1000, 4000, 16000}, Ks: []int{20, 160, 1280},
			NumSpecs: 8, PerSpec: 10, Reps: 2,
		})
		fits, err := exp.FitComplexity(res)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range fits {
			switch f.Alg {
			case core.AlgOptSelect:
				b.ReportMetric(f.ExponentK, "opt_exp_k")
			case core.AlgXQuAD:
				b.ReportMetric(f.ExponentK, "xquad_exp_k")
			case core.AlgIASelect:
				b.ReportMetric(f.ExponentK, "iasel_exp_k")
			}
		}
		b.ReportMetric(res.Speedup(16000, 1280), "speedup_at_corner")
	}
}

// BenchmarkTable3Effectiveness runs a reduced effectiveness sweep (the
// full Table 3 is cmd/trecdiv) and reports the headline means: the
// DPH baseline and the three diversifiers at the paper's best threshold.
func BenchmarkTable3Effectiveness(b *testing.B) {
	spec := exp.DefaultTable3Spec()
	spec.Pipeline.Corpus = synth.CorpusSpec{
		Seed: 3, NumTopics: 10, MinSubtopics: 2, MaxSubtopics: 5,
		DocsPerSubtopic: 15, GenericDocsPerTopic: 10, NoiseDocs: 200, DocLength: 40,
		BackgroundVocab: 600, TopicVocab: 10, SubtopicVocab: 8,
	}
	spec.Pipeline.Log = synth.AOLLike(4, 4000)
	spec.Pipeline.NumCandidates = 300
	spec.Pipeline.K = 100
	spec.Thresholds = []float64{0, 0.20}
	spec.Cutoffs = []int{5, 20}

	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable3(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Baseline.MeanAlphaNDCG(20), "dph_andcg20")
		for _, alg := range []core.Algorithm{core.AlgOptSelect, core.AlgXQuAD, core.AlgIASelect} {
			if rep, ok := res.Row(alg, 0.20); ok {
				b.ReportMetric(rep.MeanAlphaNDCG(20), string(alg)+"_andcg20")
			}
		}
	}
}

// BenchmarkFigure1UtilityRatio runs a reduced Appendix C utility-ratio
// experiment (full curves: cmd/utilityfig) and reports the mean ratio —
// the paper's factor-5-to-10 improvement headline.
func BenchmarkFigure1UtilityRatio(b *testing.B) {
	spec := exp.Figure1Spec{
		Seed: 5,
		Corpus: synth.CorpusSpec{
			Seed: 5, NumTopics: 8, MinSubtopics: 2, MaxSubtopics: 6,
			DocsPerSubtopic: 20, GenericDocsPerTopic: 15, NoiseDocs: 100, DocLength: 40,
			BackgroundVocab: 500, TopicVocab: 10, SubtopicVocab: 8,
		},
		Sessions: 3000, Presets: []string{"aol"},
		NRq: 100, PerSpec: 10, K: 10, MaxSpecs: 10,
	}
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFigure1(spec)
		if err != nil {
			b.Fatal(err)
		}
		sum, cnt := 0.0, 0
		for _, row := range res.Curves["aol"] {
			sum += row.AvgRatio * float64(row.Queries)
			cnt += row.Queries
		}
		if cnt > 0 {
			b.ReportMetric(sum/float64(cnt), "mean_utility_ratio")
		}
	}
}

// BenchmarkRecallCoverage runs a reduced Appendix C recall measurement
// (paper: 61% AOL / 65% MSN) and reports the covered fraction.
func BenchmarkRecallCoverage(b *testing.B) {
	spec := exp.RecallSpec{
		Seed: 9,
		Corpus: synth.CorpusSpec{
			Seed: 9, NumTopics: 10, MinSubtopics: 2, MaxSubtopics: 5,
			DocsPerSubtopic: 6, GenericDocsPerTopic: -1, NoiseDocs: 50, DocLength: 30,
			BackgroundVocab: 300, TopicVocab: 8, SubtopicVocab: 6,
		},
		Sessions: 4000, Presets: []string{"aol", "msn"}, TrainFrac: 0.7,
	}
	for i := 0; i < b.N; i++ {
		results, err := exp.RunRecall(spec)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.Covered, r.Preset+"_covered")
		}
	}
}

// BenchmarkPipelineQuery measures the end-to-end per-query latency of the
// assembled system (detection + problem building + OptSelect), the number
// a production deployment would care about.
func BenchmarkPipelineQuery(b *testing.B) {
	pipe := buildBenchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Diversify("topic01", core.AlgOptSelect)
	}
}

// BenchmarkPipelineDetectOnly isolates the Algorithm 1 cost (the paper's
// claim: detection is a cheap lookup against log-mined structures).
func BenchmarkPipelineDetectOnly(b *testing.B) {
	pipe := buildBenchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.DetectSpecializations("topic01")
	}
}

// BenchmarkParallelPipeline compares the sequential per-query flow with
// the §6 future-work architecture that overlaps diversification
// preparation (the R_q' retrievals) with the document-scoring phase.
func BenchmarkParallelPipeline(b *testing.B) {
	pipe := buildBenchPipeline(b)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipe.Diversify("topic01", core.AlgOptSelect)
		}
	})
	b.Run("overlapped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipe.DiversifyParallel("topic01", core.AlgOptSelect)
		}
	})
}

// BenchmarkAblationBaseRanker swaps the weighting model feeding the
// diversifier (DESIGN.md ablation 4) and reports OptSelect's α-NDCG@20
// under each, demonstrating the framework is ranker-agnostic.
func BenchmarkAblationBaseRanker(b *testing.B) {
	corpus := synth.CorpusSpec{
		Seed: 21, NumTopics: 8, MinSubtopics: 3, MaxSubtopics: 5,
		DocsPerSubtopic: 12, GenericDocsPerTopic: 10, NoiseDocs: 150,
		DocLength: 40, BackgroundVocab: 500, TopicVocab: 10, SubtopicVocab: 8,
	}
	for _, m := range []ranking.Model{ranking.DPH{}, ranking.BM25{}, ranking.TFIDF{}, ranking.LMDirichlet{}} {
		m := m
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pipe, err := repro.Build(repro.Config{
					Corpus:        corpus,
					Log:           synth.AOLLike(22, 3000),
					Engine:        engine.Config{Model: m},
					NumCandidates: 300,
					K:             100,
					Threshold:     0.2,
				})
				if err != nil {
					b.Fatal(err)
				}
				run := trec.NewRun()
				for _, topic := range pipe.Testbed.Topics {
					sel, _ := pipe.Diversify(topic.Query, core.AlgOptSelect)
					ids := make([]string, len(sel))
					for i, s := range sel {
						ids[i] = s.ID
					}
					run.AddRanking(topic.ID, ids, m.Name())
				}
				rep := eval.EvaluateRun(m.Name(), run, pipe.Testbed.Qrels, eval.DefaultAlpha, []int{20})
				b.ReportMetric(rep.MeanAlphaNDCG(20), "andcg20")
			}
		})
	}
}

// BenchmarkAblationLambda sweeps the relevance/diversity mixing parameter
// λ (DESIGN.md ablation 2) and reports xQuAD's α-NDCG@20 per setting —
// the paper fixes λ = 0.15 citing Santos et al.; the sweep shows the
// sensitivity of that choice on this testbed.
func BenchmarkAblationLambda(b *testing.B) {
	for _, lambda := range []float64{0.05, 0.15, 0.5, 0.9} {
		lambda := lambda
		b.Run(fmt.Sprintf("lambda=%.2f", lambda), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pipe, err := repro.Build(repro.Config{
					Corpus: synth.CorpusSpec{
						Seed: 23, NumTopics: 8, MinSubtopics: 3, MaxSubtopics: 5,
						DocsPerSubtopic: 12, GenericDocsPerTopic: 10, NoiseDocs: 150,
						DocLength: 40, BackgroundVocab: 500, TopicVocab: 10, SubtopicVocab: 8,
					},
					Log:           synth.AOLLike(24, 3000),
					NumCandidates: 300,
					K:             100,
					Lambda:        lambda,
				})
				if err != nil {
					b.Fatal(err)
				}
				run := trec.NewRun()
				for _, topic := range pipe.Testbed.Topics {
					sel, _ := pipe.Diversify(topic.Query, core.AlgXQuAD)
					ids := make([]string, len(sel))
					for i, s := range sel {
						ids[i] = s.ID
					}
					run.AddRanking(topic.ID, ids, "xquad")
				}
				rep := eval.EvaluateRun("xquad", run, pipe.Testbed.Qrels, eval.DefaultAlpha, []int{20})
				b.ReportMetric(rep.MeanAlphaNDCG(20), "andcg20")
			}
		})
	}
}
